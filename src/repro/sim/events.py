"""Event-driven task-level simulator — the physical-testbed substitute.

Where the slot simulator advances the paper's *analytic* cost model, this
engine tracks every task individually through FIFO compute servers
(:mod:`repro.sim.nodes`) and serialising links (:mod:`repro.sim.network`),
yielding per-task completion times, exit tiers, deadline hit rates, and
queue-wait breakdowns.  It is the source of truth for percentile latency
and for validating the slot model's expectations.

Topology (Fig. 1 / Fig. 4):

* one FIFO compute server per device (``F_i^d``);
* one FIFO uplink per device (bandwidth ``B_i^e`` serialisation + latency
  ``L_i^e`` propagation; propagation does not occupy the link);
* one FIFO compute slice per device on the edge (``p_i·F^e``) that serves
  both first-block jobs of offloaded tasks and second-block jobs — a
  container pinned to a CPU share, which is how the paper's Docker-based
  edge isolates devices.  (The slot model splits the slice analytically via
  Eq. 9; a real FIFO container achieves the same time-average split because
  the job mix determines the share each class consumes.)
* one shared FIFO edge→cloud link (``B_av^c``, ``L_av^c``);
* one FIFO cloud server (``F^c``).

Early exits are sampled per task from its partition's cumulative exit
rates ``(σ₁, σ₂, 1)``; offloading decisions are Bernoulli draws with the
policy's per-slot ratio ``x_i(t)``, the standard de-randomisation of the
fluid control variable.  Per-device partitions (the heterogeneous
extension, :mod:`repro.core.heterogeneous`) are honoured throughout.

Dynamic environments update link rates at slot boundaries; transmissions
already in service finish at their old rate (rate changes apply to
subsequently started transfers), which matches how traffic shaping tools
like the paper's COMCAST behave on short transfers.

Randomness is split into two independent streams derived from ``seed``,
mirroring :class:`repro.runtime.system.LeimeRuntime`'s documented
discipline: a **control** stream consumed at slot boundaries (environment
draws, arrival sampling, arrival offsets, offload coin flips) and an
**exit** stream from which every task pre-draws its two exit coins at
creation (the second coin is consumed only if the task reaches block 2).
Keying exit coins to the *task* instead of to global completion order is
what lets the array-backed fast lane (:mod:`repro.sim.fast_events`,
selected with ``run(engine="fast")``) batch completions without
perturbing seeded results — both engines replay the identical coin for
the identical task.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..core.offloading import EdgeSystem, LyapunovState, OffloadingPolicy
from .arrivals import ArrivalProcess
from .environment import DynamicEnvironment, StaticEnvironment
from .network import Link
from .nodes import FifoServer
from .streaming import StreamingTaskStats
from .tasks import TaskRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultPlan
    from ..resilience.overload import OverloadControl
    from ..resilience.qos import QoSConfig
    from ..resilience.recovery import RecoveryPolicy


class _Engine:
    """Minimal event loop: a heap of ``(time, seq, callback)``."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._seq = itertools.count()
        self.now = 0.0

    def schedule(self, time: float, callback: Callable[[float], None]) -> None:
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def run_until(self, horizon: float) -> None:
        while self._heap and self._heap[0][0] <= horizon:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            callback(time)
        self.now = max(self.now, horizon)

    def run_to_exhaustion(self, hard_limit: float) -> None:
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            if time > hard_limit:
                raise RuntimeError(
                    f"event simulation exceeded hard time limit {hard_limit}s — "
                    "the system is unstable and will not drain"
                )
            self.now = time
            callback(time)


#: Fleet size above which ``engine="auto"`` picks the array-backed fast
#: lane.  Below it the scalar heap wins: the fast lane pays a fixed
#: per-window cost (array pools, lexsorts) that only amortises once a
#: window carries hundreds of concurrent tasks — the benchmark sweep
#: (``benchmarks/bench_events.py``) puts the crossover between 100 and
#: 1000 devices on every machine measured.
AUTO_ENGINE_THRESHOLD = 200


def resolve_engine(engine: str, num_devices: int) -> str:
    """Resolve ``"auto"`` to a concrete engine by fleet size.

    Pure wall-clock heuristic: both engines are per-task *identical* (the
    differential harness pins this), so auto-selection can never change
    results — seeded runs stay byte-identical whichever side of the
    threshold a fleet lands on."""
    if engine == "auto":
        return "fast" if num_devices > AUTO_ENGINE_THRESHOLD else "scalar"
    return engine


@dataclass(frozen=True)
class EventSimResult:
    """Per-task outcomes of an event-driven run.

    Empty-fleet convention: statistics over zero tasks — ``mean_tct``
    over zero completions, ``completion_rate``/``drop_rate``/
    ``deadline_hit_rate`` over zero generated tasks — are ``NaN``, never
    an optimistic ``1.0``/``0.0``, so a run whose every task failed (or
    that generated nothing) cannot masquerade as a perfect one.  Check
    ``math.isnan`` (NaN compares unequal to everything, including
    itself) before asserting on these fields.

    Streaming mode: a run with ``metrics="streaming"`` carries no
    per-task records — ``tasks`` is empty and ``stats`` holds the
    constant-size :class:`~repro.sim.streaming.StreamingTaskStats`
    aggregate instead.  Every aggregate property below reads the
    matching exact counter (percentiles come from the sketch, within
    its documented ``alpha`` bound); accessors that inherently need the
    per-task records (``completed``, ``dropped_tasks``,
    ``per_device_mean_tct``, ``tct_by_creation_slot``) raise a loud
    ``ValueError`` rather than silently returning an empty view.
    """

    tasks: tuple[TaskRecord, ...]
    horizon: float
    #: Degradation-ladder rung per generation slot (empty when the run
    #: was ungoverned) — see :mod:`repro.resilience.overload`.
    modes: tuple[int, ...] = ()
    #: Constant-memory aggregate when the run used
    #: ``metrics="streaming"``; None in record mode.
    stats: StreamingTaskStats | None = None
    #: QoS class names when the run carried a
    #: :class:`~repro.resilience.qos.QoSConfig` (empty otherwise); the
    #: order keys ``class_stats`` and the per-class accessors.
    class_names: tuple[str, ...] = ()
    #: Per-class streaming aggregates (one per ``class_names`` entry)
    #: when a QoS run used ``metrics="streaming"``; None in record mode
    #: (task records carry their class in ``TaskRecord.qos``).
    class_stats: tuple[StreamingTaskStats, ...] | None = None

    def _require_records(self, what: str) -> None:
        if self.stats is not None:
            raise ValueError(
                f"{what} requires per-task records, but this result was "
                'produced with metrics="streaming" (constant-memory '
                'aggregates only) — re-run with metrics="records"'
            )

    @property
    def generated_count(self) -> int:
        """Tasks generated, exact in both metric modes."""
        if self.stats is not None:
            return self.stats.generated
        return len(self.tasks)

    @property
    def completed_count(self) -> int:
        """Tasks completed, exact in both metric modes."""
        if self.stats is not None:
            return self.stats.completed
        return len(self.completed)

    @cached_property
    def completed(self) -> tuple[TaskRecord, ...]:
        """Completed tasks, materialised once (results are frozen)."""
        self._require_records("completed")
        return tuple(t for t in self.tasks if t.done)

    @cached_property
    def _sorted_tcts(self) -> np.ndarray:
        """Ascending completed-task TCTs, sorted once per result.
        ``mean_tct``/``tct_percentile`` and the deadline metrics read this
        instead of re-sorting the completed list on every call —
        ``fig_faults``/``fig_wild`` query them in loops.  Results are
        frozen, so no invalidation is needed."""
        return np.sort(
            np.array([t.tct for t in self.completed], dtype=np.float64)
        )

    @property
    def mean_tct(self) -> float:
        """Mean completion time over completed tasks (NaN if none).
        Exact in both metric modes (streaming keeps an exact sum)."""
        if self.stats is not None:
            return self.stats.mean_tct
        done = self.completed
        if not done:
            return float("nan")
        return sum(t.tct for t in done) / len(done)

    def tct_percentile(self, q: float) -> float:
        """Completed-task TCT percentile — exact in record mode, within
        the sketch's ``alpha`` relative-error bound in streaming mode."""
        if self.stats is not None:
            return self.stats.percentile(q)
        if not self.completed:
            return float("nan")
        return float(np.percentile(self._sorted_tcts, q))

    @property
    def completion_rate(self) -> float:
        """Fraction of generated tasks completed (NaN if none generated)."""
        total = self.generated_count
        if not total:
            return float("nan")
        return self.completed_count / total

    # -- SLO accounting -----------------------------------------------------

    @property
    def dropped_tasks(self) -> tuple[TaskRecord, ...]:
        self._require_records("dropped_tasks")
        return tuple(t for t in self.tasks if t.dropped)

    @property
    def dropped_count(self) -> int:
        if self.stats is not None:
            return self.stats.dropped
        return sum(1 for t in self.tasks if t.dropped)

    @property
    def in_flight_count(self) -> int:
        """Tasks still in the system at the horizon.  The accounting
        identity ``generated == completed + dropped + shed + in-flight``
        always holds (the property harness pins it); streaming mode
        counts in-flight tasks explicitly at the horizon rather than
        deriving them, so the identity genuinely checks the books."""
        if self.stats is not None:
            return self.stats.in_flight
        return sum(1 for t in self.tasks if t.in_flight)

    @property
    def shed_count(self) -> int:
        """Tasks rejected at admission by overload control."""
        if self.stats is not None:
            return self.stats.shed
        return sum(1 for t in self.tasks if t.shed)

    @property
    def shed_rate(self) -> float:
        """Fraction of generated tasks shed (NaN if none generated)."""
        total = self.generated_count
        if not total:
            return float("nan")
        return self.shed_count / total

    @property
    def total_retries(self) -> int:
        """Fault-recovery attempts consumed across all tasks."""
        if self.stats is not None:
            return self.stats.retries
        return sum(t.retries for t in self.tasks)

    @property
    def drop_rate(self) -> float:
        """Fraction of generated tasks dropped (NaN if none generated)."""
        total = self.generated_count
        if not total:
            return float("nan")
        return self.dropped_count / total

    def deadline_miss_rate(self, deadline: float) -> float:
        """Complement of :meth:`deadline_hit_rate` — dropped and
        in-flight tasks count as misses."""
        return 1.0 - self.deadline_hit_rate(deadline)

    def exit_fractions(self) -> tuple[float, float, float]:
        """Fraction of completed tasks exiting at tiers 1, 2, 3 (NaN
        triple when nothing completed — the empty-fleet convention; a
        run that completed nothing must not read as "0% deep exits")."""
        if self.stats is not None:
            total = self.stats.completed
            if not total:
                nan = float("nan")
                return (nan, nan, nan)
            return tuple(
                self.stats.exit_counts.get(tier, 0) / total
                for tier in (1, 2, 3)
            )
        done = self.completed
        if not done:
            nan = float("nan")
            return (nan, nan, nan)
        counts = [0, 0, 0]
        for task in done:
            counts[task.exit_tier - 1] += 1
        total = len(done)
        return (counts[0] / total, counts[1] / total, counts[2] / total)

    def offloaded_fraction(self) -> float:
        """Fraction of completed tasks whose first block ran on the edge
        (NaN when nothing completed)."""
        if self.stats is not None:
            if not self.stats.completed:
                return float("nan")
            return self.stats.offloaded_completed / self.stats.completed
        done = self.completed
        if not done:
            return float("nan")
        return sum(1 for t in done if t.offloaded) / len(done)

    def deadline_hit_rate(self, deadline: float) -> float:
        """Fraction of *all generated* tasks completed within ``deadline``
        seconds of creation — the §II-A "deadline requirements" metric.
        In-flight and dropped tasks count as misses, so an unstable scheme
        cannot look good by abandoning its worst tasks.  NaN when no tasks
        were generated (the empty-fleet convention).  Exact in record
        mode; in streaming mode the hit count comes from the latency
        sketch, so it is accurate to the sketch's bucket resolution."""
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        total = self.generated_count
        if not total:
            return float("nan")
        if self.stats is not None:
            done = self.stats.completed
            if not done:
                return 0.0
            return self.stats.deadline_hit_fraction(deadline) * done / total
        hits = int(np.searchsorted(self._sorted_tcts, deadline, side="right"))
        return hits / total

    # -- per-class accounting (QoS runs) ------------------------------------

    def _require_qos(self, what: str) -> None:
        if not self.class_names:
            raise ValueError(
                f"{what} needs per-class accounting — run with "
                "qos=QoSConfig(...)"
            )

    def class_counts(self) -> dict[str, dict[str, int]]:
        """Exact per-class SLO counters (``generated`` / ``completed`` /
        ``dropped`` / ``shed`` / ``in_flight`` / ``retries``), keyed by
        class name.  Raises when the run carried no QoS config."""
        from ..resilience.qos import class_counts

        self._require_qos("class_counts")
        return class_counts(self.class_names, self.tasks, self.class_stats)

    def class_summary(
        self, deadlines: dict[str, float] | None = None
    ) -> dict[str, dict]:
        """Per-class SLO summary (rates, mean/p99 TCT, optional
        per-class deadline-miss rates).  A class with zero generated
        tasks reports ``NaN`` rates — the empty-class sentinel
        convention; see :func:`repro.resilience.qos.class_summary`."""
        from ..resilience.qos import class_summary

        self._require_qos("class_summary")
        return class_summary(
            self.class_names, self.tasks, self.class_stats, deadlines
        )

    def class_identity_gaps(self) -> dict[str, int]:
        """Per-class ``generated - (completed + dropped + shed +
        in_flight)`` — all zero iff the per-class conservation identity
        holds (and then sums to the global identity by construction)."""
        from ..resilience.qos import class_identity_gaps

        self._require_qos("class_identity_gaps")
        return class_identity_gaps(
            self.class_names, self.tasks, self.class_stats
        )

    def per_device_mean_tct(self, num_devices: int) -> list[float]:
        """Mean TCT by generating device (NaN for devices that completed
        nothing, per the empty-fleet convention)."""
        self._require_records("per_device_mean_tct")
        totals = [0.0] * num_devices
        counts = [0] * num_devices
        for task in self.completed:
            totals[task.device] += task.tct
            counts[task.device] += 1
        return [
            totals[i] / counts[i] if counts[i] else float("nan")
            for i in range(num_devices)
        ]

    def tct_by_creation_slot(
        self, slot_length: float, num_slots: int
    ) -> np.ndarray:
        """Mean TCT of tasks *created* in each slot (NaN-free: slots with
        no tasks get 0) — the per-slot timeline the Fig. 9 stability plots
        need.  Tasks that never completed are charged their age at the end
        of the simulation, so an unstable scheme's timeline rises instead
        of silently dropping its worst tasks."""
        self._require_records("tct_by_creation_slot")
        totals = np.zeros(num_slots)
        counts = np.zeros(num_slots)
        for task in self.tasks:
            slot = min(int(task.created / slot_length), num_slots - 1)
            latency = (
                task.tct if task.done else self.horizon - task.created
            )
            totals[slot] += latency
            counts[slot] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            timeline = np.where(counts > 0, totals / np.maximum(counts, 1), 0.0)
        return timeline


@dataclass
class EventSimulator:
    """Task-level simulation of an :class:`EdgeSystem` under a policy.

    Attributes:
        system: The deployed system (partition(s), shares, τ).
        arrivals: One arrival process per device.
        environment: Per-slot link dynamics.
        seed: RNG seed — shared across schemes for common random numbers.
        spread_arrivals: If true, a slot's tasks arrive uniformly through
            the slot; if false they arrive at the slot start (the paper's
            §III-D2 simplifying assumption).
        shared_uplink: Model the device↔edge hop as one shared WiFi medium
            (all devices' transfers serialise through a single FIFO at the
            first device's bandwidth) instead of independent per-device
            links.  Real 802.11 airtime is shared, so per-device links —
            the paper's `B_i^e` model — are optimistic under simultaneous
            uploads; this switch quantifies that optimism.
        faults: A :class:`~repro.resilience.faults.FaultPlan` to replay:
            transfers started in a drop slot never arrive, corrupted
            transfers burn airtime and must be re-sent, edge submissions
            during an outage are rejected, stragglers scale the local
            first block.  All fault handling is deterministic (the plan
            is pre-realised, backoff is a fixed schedule), so a fault run
            draws exactly the RNG sequence of its fault-free twin.
        recovery: The :class:`~repro.resilience.recovery.RecoveryPolicy`
            budget applied when a fault hits (defaults to
            ``RecoveryPolicy.none()`` — the naive baseline that loses the
            task on first contact).  Requires ``faults``.  When the
            budget enables dead-edge exclusion or the telemetry watchdog,
            the policy passed to :meth:`run` is wrapped in a
            :class:`~repro.resilience.recovery.ResilientPolicy`.
        overload: An :class:`~repro.resilience.overload.OverloadControl`
            enabling the load-control layer at slot boundaries: the
            admission gate sheds whole tasks (created, counted, but
            never launched — their RNG draws are still consumed, so a
            governed run replays its ungoverned twin's streams),
            backpressure clamps the offloading ratios, and the
            degradation ladder overrides the per-device exit parameters.
            Both engines realise the identical control decisions, so the
            per-task equality contract extends to governed runs.
        qos: A :class:`~repro.resilience.qos.QoSConfig` enabling the
            QoS-class serving layer: tasks carry a seeded per-device
            class, the edge's warm pool charges cold-start holds on
            slice frontiers under a memory budget, the governor ladder
            gains per-class rung biases and budgeted
            utility-per-cost shedding, and per-class SLO accounting is
            threaded through both metric modes.  The QoS control plane
            consumes no control/exit RNG draws, so the scalar↔fast
            per-task identity contract extends to QoS runs.
    """

    system: EdgeSystem
    arrivals: Sequence[ArrivalProcess]
    environment: DynamicEnvironment = field(default_factory=StaticEnvironment)
    seed: int = 0
    spread_arrivals: bool = True
    shared_uplink: bool = False
    faults: "FaultPlan | None" = None
    recovery: "RecoveryPolicy | None" = None
    overload: "OverloadControl | None" = None
    qos: "QoSConfig | None" = None

    def __post_init__(self) -> None:
        if len(self.arrivals) != self.system.num_devices:
            raise ValueError("need one arrival process per device")
        if self.recovery is not None and self.faults is None:
            raise ValueError("recovery requires a fault plan to recover from")
        if (
            self.faults is not None
            and self.faults.num_devices != self.system.num_devices
        ):
            raise ValueError(
                f"fault plan covers {self.faults.num_devices} devices but "
                f"the system has {self.system.num_devices}"
            )

    def _resolve_policy(
        self, policy: OffloadingPolicy
    ) -> tuple[OffloadingPolicy, "RecoveryPolicy | None"]:
        """The effective (policy, recovery) pair for a run: default the
        recovery budget when faults are present and wrap the policy in a
        :class:`~repro.resilience.recovery.ResilientPolicy` when the
        budget asks for control-plane recovery.  Shared by the scalar and
        fast engines so both replay identical control decisions."""
        recovery = self.recovery
        if self.faults is not None and recovery is None:
            from ..resilience.recovery import RecoveryPolicy

            recovery = RecoveryPolicy.none()
        if recovery is not None and (
            recovery.exclude_dead_edge or recovery.watchdog
        ):
            from ..resilience.recovery import ResilientPolicy

            policy = ResilientPolicy(policy, self.faults, recovery)
        return policy, recovery

    def _fingerprint(
        self, path_name: str, num_slots: int, metrics: str = "records"
    ) -> str:
        """Digest of the run configuration for checkpoint validation.

        Includes the active kernel tier and the metrics mode: a
        checkpoint taken under one engine tier or metric mode must not
        silently resume under another (the compiled tier is bitwise-
        identical by contract, but a *claimed* equality is exactly what
        checkpoint validation exists to not take on faith, and a
        streaming run cannot continue from record-mode state)."""
        from ..chaos.checkpoint import run_fingerprint
        from ..core.kernels import kernel_tier

        return run_fingerprint(
            path=path_name,
            seed=self.seed,
            devices=self.system.num_devices,
            slots=num_slots,
            spread_arrivals=self.spread_arrivals,
            shared_uplink=self.shared_uplink,
            faults=None if self.faults is None else repr(self.faults.describe()),
            recovery=repr(self.recovery),
            overload=repr(self.overload),
            qos=repr(self.qos),
            kernels=kernel_tier(),
            metrics=metrics,
        )

    def run(
        self,
        policy: OffloadingPolicy,
        num_slots: int,
        drain: bool = True,
        drain_limit_factor: float = 50.0,
        engine: str = "scalar",
        metrics: str = "records",
        checkpoint_every: int | None = None,
        checkpoint_sink=None,
        resume_from=None,
    ) -> EventSimResult:
        """Generate ``num_slots`` slots of tasks and simulate to completion.

        Args:
            policy: Offloading policy consulted at each slot boundary.
            num_slots: Number of generation slots.
            drain: After generation stops, keep simulating until every task
                completes (bounded by ``drain_limit_factor`` × the
                generation horizon; exceeding it raises, which is the
                unstable-system signal tests rely on).
            drain_limit_factor: Safety bound for the drain phase.
            engine: ``"scalar"`` walks the reference closure-per-hop event
                loop below; ``"fast"`` dispatches the identical scenario
                to the array-backed engine
                (:func:`repro.sim.fast_events.run_fast`), which the
                differential harness pins to the scalar results per task;
                ``"auto"`` picks by fleet size (see
                :func:`resolve_engine`) — safe because the two engines
                are per-task identical, so the choice affects wall-clock
                only, never results.
            metrics: ``"records"`` (default) retains one
                :class:`~repro.sim.tasks.TaskRecord` per generated task;
                ``"streaming"`` folds every task into a constant-size
                :class:`~repro.sim.streaming.StreamingTaskStats`
                aggregate at its terminal event instead, so memory is
                independent of task count (the serving-scale mode —
                ``result.tasks`` is empty, aggregate properties keep
                working).
            checkpoint_every: Emit a checkpoint to ``checkpoint_sink`` at
                every such slot boundary.  The fast engine emits
                ``"state"``-kind snapshots (its run state is plain
                arrays); the scalar engine's heap holds closures over
                live queues, so it emits ``"replay"``-kind markers —
                resume re-executes deterministically from the seed, which
                is byte-identical for the same reason two seeded runs
                are.
            checkpoint_sink: Callable receiving each checkpoint.
            resume_from: Continue (fast) or deterministically re-execute
                (scalar) a killed run from its checkpoint; the
                fingerprint must match this simulator's configuration —
                including the kernel tier and metrics mode it ran under.
        """
        if num_slots <= 0:
            raise ValueError("need a positive number of slots")
        if engine not in ("scalar", "fast", "auto"):
            raise ValueError(f"unknown event engine {engine!r}")
        if metrics not in ("records", "streaming"):
            raise ValueError(f"unknown metrics mode {metrics!r}")
        engine = resolve_engine(engine, self.system.num_devices)
        if engine == "fast":
            from .fast_events import run_fast

            return run_fast(
                self,
                policy,
                num_slots,
                drain=drain,
                drain_limit_factor=drain_limit_factor,
                metrics=metrics,
                checkpoint_every=checkpoint_every,
                checkpoint_sink=checkpoint_sink,
                resume_from=resume_from,
            )
        from ..chaos.checkpoint import (
            should_emit,
            snapshot,
            validate_hooks,
            validate_resume,
        )

        validate_hooks(checkpoint_every, checkpoint_sink)
        fingerprint = self._fingerprint("event-scalar", num_slots, metrics)
        if resume_from is not None:
            # The scalar engine's checkpoints are replay-kind: validate
            # the configuration matches, then re-execute from slot 0 —
            # determinism from the seed makes the result byte-identical
            # to the uninterrupted run.
            validate_resume(resume_from, "event-scalar", "replay", fingerprint)
        control_seq, exit_seq = np.random.SeedSequence(self.seed).spawn(2)
        rng = np.random.default_rng(control_seq)
        exit_rng = np.random.default_rng(exit_seq)
        engine = _Engine()
        system = self.system
        tau = system.slot_length
        n = system.num_devices

        device_cpu = [
            FifoServer(
                f"device-{i}",
                system.devices[i].flops,
                overhead=system.devices[i].overhead,
            )
            for i in range(n)
        ]
        if self.shared_uplink:
            medium = Link("shared-wifi", system.devices[0].link)
            uplink = [medium] * n
        else:
            uplink = [
                Link(f"uplink-{i}", system.devices[i].link) for i in range(n)
            ]
        edge_slice = [
            FifoServer(
                f"edge-slice-{i}",
                max(system.shares[i], 1e-9) * system.edge_flops,
                overhead=system.edge_overhead,
            )
            for i in range(n)
        ]
        cloud_link = Link("edge-cloud", system.edge_cloud)
        cloud_cpu = FifoServer(
            "cloud", system.cloud_flops, overhead=system.cloud_overhead
        )

        faults = self.faults
        policy, recovery = self._resolve_policy(policy)

        # Effective exit parameters per device.  The degradation ladder
        # overrides them at slot boundaries; every exit decision reads
        # them at completion time, mirroring how the fast engine's
        # per-window arrays pick up the rung set at the window start.
        sigma1_eff = [system.partition_for(i).sigma1 for i in range(n)]
        exit2_eff = [0.0] * n
        for i in range(n):
            part = system.partition_for(i)
            exit2_eff[i] = (
                (part.sigma2 - part.sigma1) / (1.0 - part.sigma1)
                if part.sigma1 < 1.0
                else 1.0
            )
        governor = None
        modes: list[int] = []
        if self.overload is not None:
            from ..resilience.overload import (
                OverloadGovernor,
                apply_backpressure,
                degraded_exit_params,
            )

            governor = OverloadGovernor(self.overload, n)

        qstate = None
        class_name_of: list[str] = []
        if self.qos is not None:
            from ..resilience.qos import (
                QoSState,
                apply_backpressure_by_mode,
                plan_device_modes,
            )

            qstate = QoSState(self.qos, system, self.seed)
            class_name_of = [
                qstate.class_names[c] for c in qstate.class_of
            ]
        device_modes = [0] * n

        streaming = metrics == "streaming"
        stats = StreamingTaskStats() if streaming else None
        cstats = (
            [StreamingTaskStats() for _ in qstate.class_names]
            if streaming and qstate is not None
            else None
        )
        tasks: list[TaskRecord] = []
        # Tasks between creation and their terminal event, by id.  In
        # streaming mode this is the *only* reference keeping a task
        # record alive besides its scheduled continuation: terminal
        # events pop it, so memory tracks concurrent in-flight tasks,
        # not the ever-growing total.
        live_tasks: dict[int, TaskRecord] = {}
        # Two exit coins per task, pre-drawn at creation from the exit
        # stream and indexed by task id (see the module docstring).
        # Streaming mode pops a task's coins at its terminal event, for
        # the same constant-memory reason.
        exit_coins: dict[int, tuple[float, float]] | list = (
            {} if streaming else []
        )
        ratios = [0.0] * n
        fractional = [0.0] * n
        state = LyapunovState.zeros(n)

        def finish(task: TaskRecord, time: float, tier: int) -> None:
            task.completed = time
            task.exit_tier = tier
            if streaming:
                stats.observe_completed(
                    time - task.created, tier, task.offloaded, task.retries
                )
                if cstats is not None:
                    cstats[qstate.class_of[task.device]].observe_completed(
                        time - task.created, tier, task.offloaded,
                        task.retries,
                    )
                live_tasks.pop(task.task_id, None)
                exit_coins.pop(task.task_id, None)

        def drop(task: TaskRecord) -> None:
            task.dropped = True
            if streaming:
                stats.observe_dropped(task.retries)
                if cstats is not None:
                    cstats[qstate.class_of[task.device]].observe_dropped(
                        task.retries
                    )
                live_tasks.pop(task.task_id, None)
                exit_coins.pop(task.task_id, None)

        def fault_slot(time: float) -> int:
            # Past the plan the accessors report a healthy world, so the
            # drain phase always terminates.
            return int(time / tau)

        def try_again(
            task: TaskRecord,
            time: float,
            action: Callable[[float], None],
            give_up: Callable[[float], None],
        ) -> None:
            """One failed attempt: spend a retry (deterministic backoff),
            drop on a deadline breach, or hand over to ``give_up`` once
            the budget is gone."""
            attempt = task.retries
            if attempt >= recovery.max_retries:
                give_up(time)
                return
            delay = recovery.backoff(attempt)
            if (
                recovery.deadline is not None
                and time + delay - task.created > recovery.deadline
            ):
                drop(task)
                return
            task.retries += 1
            engine.schedule(time + delay, action)

        def transmit_uplink(
            task: TaskRecord,
            time: float,
            size: float,
            on_sent: Callable[[float, float], None],
            give_up: Callable[[float], None],
        ) -> None:
            """The device's uplink with drop/corrupt faults applied:
            a transfer started in a drop slot never arrives; a corrupted
            transfer burns its airtime, then must be re-sent."""
            if faults is None:
                uplink[task.device].transmit(engine, time, size, on_sent)
                return
            slot = fault_slot(time)
            if faults.drop_at(slot, task.device):
                try_again(
                    task,
                    time,
                    lambda t: transmit_uplink(task, t, size, on_sent, give_up),
                    give_up,
                )
                return
            corrupted = faults.corrupt_at(slot, task.device)

            def sent(t: float, service: float) -> None:
                if corrupted:
                    # Wasted airtime still counts against the task.
                    task.transfer_time += t - time
                    try_again(
                        task,
                        t,
                        lambda t2: transmit_uplink(
                            task, t2, size, on_sent, give_up
                        ),
                        give_up,
                    )
                else:
                    on_sent(t, service)

            uplink[task.device].transmit(engine, time, size, sent)

        def submit_edge(
            task: TaskRecord,
            time: float,
            demand: float,
            on_done: Callable[[float, float], None],
            give_up: Callable[[float], None],
        ) -> None:
            """The task's edge slice with the outage mask applied: a
            crashed edge rejects new submissions (jobs already queued
            drain when it returns — a restart, not data loss)."""
            if faults is not None and faults.edge_down_at(fault_slot(time)):
                try_again(
                    task,
                    time,
                    lambda t: submit_edge(task, t, demand, on_done, give_up),
                    give_up,
                )
                return
            edge_slice[task.device].submit(engine, time, demand, on_done)

        def to_cloud(task: TaskRecord, time: float) -> None:
            part = system.partition_for(task.device)

            def sent(t: float, service: float) -> None:
                task.transfer_time += t - time

                def computed(t2: float, service2: float) -> None:
                    task.compute_time += service2
                    task.queue_time += (t2 - t) - service2
                    finish(task, t2, 3)

                cloud_cpu.submit(engine, t, part.mu3, computed)

            cloud_link.transmit(engine, time, part.d2, sent)

        def second_block(task: TaskRecord, time: float) -> None:
            """Run block 2 on the task's edge slice, then exit or go deeper."""
            part = system.partition_for(task.device)

            def computed(t: float, service: float) -> None:
                task.compute_time += service
                task.queue_time += (t - time) - service
                if exit_coins[task.task_id][1] < exit2_eff[task.device]:
                    finish(task, t, 2)
                else:
                    to_cloud(task, t)

            def give_up(t: float) -> None:
                # Block 2 needs the intermediate state that lives on the
                # edge path; past the retry budget the task is lost.
                drop(task)

            submit_edge(task, time, part.mu2, computed, give_up)

        def first_block_on_edge(task: TaskRecord, time: float) -> None:
            part = system.partition_for(task.device)

            def computed(t: float, service: float) -> None:
                task.compute_time += service
                task.queue_time += (t - time) - service
                if exit_coins[task.task_id][0] < sigma1_eff[task.device]:
                    finish(task, t, 1)
                else:
                    second_block(task, t)

            def give_up(t: float) -> None:
                # The device still holds the raw input: fall back to an
                # on-device first block, or lose the task.
                if recovery is not None and recovery.fallback_local:
                    first_block_on_device(task, t)
                else:
                    drop(task)

            submit_edge(task, time, part.mu1, computed, give_up)

        def first_block_on_device(task: TaskRecord, time: float) -> None:
            """Local first block on the device CPU (straggler-scaled)."""
            part = system.partition_for(task.device)
            demand = part.mu1
            if faults is not None:
                demand *= faults.straggler_at(fault_slot(time), task.device)

            def computed(t: float, service: float) -> None:
                task.compute_time += service
                task.queue_time += (t - time) - service
                if exit_coins[task.task_id][0] < sigma1_eff[task.device]:
                    finish(task, t, 1)
                    return

                # Non-exited: intermediate d1 to the edge for block 2.
                def sent(t2: float, service2: float) -> None:
                    task.transfer_time += t2 - t
                    second_block(task, t2)

                def give_up(t2: float) -> None:
                    drop(task)

                transmit_uplink(task, t, part.d1, sent, give_up)

            device_cpu[task.device].submit(engine, time, demand, computed)

        def launch(task: TaskRecord, time: float) -> None:
            part = system.partition_for(task.device)
            if task.offloaded:
                # Raw input travels to the edge first (d0 on the uplink).
                def sent(t: float, service: float) -> None:
                    task.transfer_time += t - time
                    first_block_on_edge(task, t)

                def give_up(t: float) -> None:
                    if recovery is not None and recovery.fallback_local:
                        first_block_on_device(task, t)
                    else:
                        drop(task)

                transmit_uplink(task, time, part.d0, sent, give_up)
                return

            first_block_on_device(task, time)

        def slot_boundary(slot: int) -> Callable[[float], None]:
            def handler(time: float) -> None:
                if should_emit(checkpoint_every, slot):
                    checkpoint_sink(
                        snapshot("event-scalar", "replay", slot, fingerprint, {})
                    )
                live = self.environment.devices_at(slot, system.devices, rng)
                if self.shared_uplink:
                    uplink[0].reconfigure(live[0].link)
                else:
                    for i, device in enumerate(live):
                        uplink[i].reconfigure(device.link)
                # Mirror true queue occupancy into the Lyapunov state the
                # policies read.
                for i in range(n):
                    state.queue_local[i] = device_cpu[i].occupancy
                    state.queue_edge[i] = edge_slice[i].occupancy
                expected = [proc.mean(slot) for proc in self.arrivals]
                if governor is not None:
                    backlogs = [
                        state.queue_local[i] + state.queue_edge[i]
                        for i in range(n)
                    ]
                    mode = governor.observe(slot, backlogs)
                    # Per-device rungs: the global rung biased by each
                    # device's class (uniform without a QoS config, so
                    # the PR 5 path is reproduced exactly).
                    if qstate is not None:
                        device_modes[:] = plan_device_modes(
                            qstate, n, mode, expected
                        )
                    else:
                        device_modes[:] = [mode] * n
                    for i in range(n):
                        sigma1_eff[i], exit2_eff[i] = degraded_exit_params(
                            system.partition_for(i), device_modes[i]
                        )
                    modes.append(mode)
                # Warm-pool step: flush on an edge outage (the restart
                # lands cold), otherwise load/evict under the memory
                # budget and hold cold slices until their warm time.
                if qstate is not None:
                    if faults is not None and faults.edge_down_at(slot):
                        qstate.flush()
                        holds = [time] * n
                    else:
                        requested = qstate.requested_mask(
                            expected, device_modes
                        )
                        holds = qstate.on_slot(slot, time, requested)
                    for i in range(n):
                        edge_slice[i].hold_until(engine, time, holds[i])
                ratios[:] = policy.decide(system, state, expected, live)
                if governor is not None:
                    if qstate is not None:
                        ratios[:] = apply_backpressure_by_mode(
                            ratios, state.queue_edge, self.overload,
                            device_modes,
                        )
                    else:
                        ratios[:] = apply_backpressure(
                            ratios, state.queue_edge, self.overload,
                            governor.mode,
                        )
                for i, proc in enumerate(self.arrivals):
                    # Tasks are integral here; fractional draws (the fluid
                    # model's constant rates) accumulate until they yield a
                    # whole task, so long-run rates are preserved exactly.
                    fractional[i] += float(proc.sample(slot, rng))
                    count = int(fractional[i])
                    fractional[i] -= count
                    # The gate runs once per device per slot (token refill)
                    # even when nothing arrived.  Shed tasks beyond the
                    # allowance are still created — all their RNG draws are
                    # consumed so a governed run replays its ungoverned
                    # twin's streams — but never launched.
                    admitted = (
                        count
                        if governor is None
                        else governor.gate.admit_count(
                            i, count, backlogs[i], device_modes[i]
                        )
                    )
                    for k in range(count):
                        offset = (
                            float(rng.uniform(0.0, tau))
                            if self.spread_arrivals
                            else 0.0
                        )
                        task = TaskRecord(
                            # Streaming keeps no task list; the exact
                            # generated counter doubles as the id source
                            # (incremented one per task, in order).
                            task_id=(
                                stats.generated if streaming else len(tasks)
                            ),
                            device=i,
                            created=time + offset,
                            offloaded=bool(rng.random() < ratios[i]),
                            shed=k >= admitted,
                            qos=class_name_of[i] if qstate is not None else "",
                        )
                        coins = (
                            float(exit_rng.random()), float(exit_rng.random())
                        )
                        if streaming:
                            stats.observe_generated()
                            if cstats is not None:
                                crow = cstats[qstate.class_of[i]]
                                crow.observe_generated()
                                if task.shed:
                                    crow.observe_shed()
                            if task.shed:
                                # Never launched: terminal at creation
                                # (its coins are drawn but never read).
                                stats.observe_shed()
                            else:
                                live_tasks[task.task_id] = task
                                exit_coins[task.task_id] = coins
                        else:
                            tasks.append(task)
                            exit_coins.append(coins)
                        if not task.shed:
                            engine.schedule(
                                task.created,
                                lambda t, _task=task: launch(_task, t),
                            )

            return handler

        for slot in range(num_slots):
            engine.schedule(slot * tau, slot_boundary(slot))

        horizon = num_slots * tau
        engine.run_until(horizon)
        if drain:
            engine.run_to_exhaustion(horizon * drain_limit_factor)
        names = qstate.class_names if qstate is not None else ()
        if streaming:
            # Whatever never reached a terminal event is in flight at the
            # horizon — counted explicitly so the conservation identity
            # verifies the books instead of restating them.
            for task in live_tasks.values():
                stats.observe_in_flight(1, task.retries)
                if cstats is not None:
                    cstats[qstate.class_of[task.device]].observe_in_flight(
                        1, task.retries
                    )
            return EventSimResult(
                tasks=(),
                horizon=engine.now,
                modes=tuple(modes),
                stats=stats,
                class_names=names,
                class_stats=tuple(cstats) if cstats is not None else None,
            )
        return EventSimResult(
            tasks=tuple(tasks),
            horizon=engine.now,
            modes=tuple(modes),
            class_names=names,
        )

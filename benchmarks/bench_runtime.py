"""Cross-check: analytic slot model vs event simulation vs live threads.

The same deployment is evaluated three ways; agreement between them is the
repository's strongest internal-validity evidence (each layer has
completely different failure modes: algebra, event ordering, real
concurrency).
"""

from __future__ import annotations

from repro.core.offloading import DeviceConfig, EdgeSystem, FixedRatioPolicy
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import build_model
from repro.runtime import LeimeRuntime
from repro.sim.arrivals import ConstantArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator


def _system() -> EdgeSystem:
    me_dnn = MultiExitDNN(build_model("inception-v3"))
    partition = me_dnn.partition_at(5, 14)
    devices = tuple(
        DeviceConfig.from_platform(
            RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 0.5, name=f"pi-{i}"
        )
        for i in range(2)
    )
    return EdgeSystem(
        devices=devices,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=partition,
        edge_overhead=EDGE_I7_3770.per_task_overhead,
        cloud_overhead=CLOUD_V100.per_task_overhead,
    )


def bench_three_way_consistency(benchmark):
    system = _system()
    arrivals = [ConstantArrivals(0.5)] * 2
    policy = FixedRatioPolicy(1.0)

    def run_all_three():
        slot = SlotSimulator(system=system, arrivals=arrivals, seed=4).run(
            policy, 60
        )
        event = EventSimulator(system=system, arrivals=arrivals, seed=4).run(
            policy, 60
        )
        runtime = LeimeRuntime(system, policy, speedup=40.0, seed=4)
        try:
            live = runtime.run(arrivals, num_slots=60, drain_timeout=60.0)
        finally:
            runtime.shutdown()
        return slot.mean_tct, event.mean_tct, live.mean_tct

    slot_tct, event_tct, live_tct = benchmark.pedantic(
        run_all_three, rounds=1, iterations=1
    )
    # The three layers agree within loose factors (the slot model includes
    # conservative intra-slot queueing; threads add scheduling jitter).
    assert event_tct == pytest_approx(slot_tct, 0.7)
    assert live_tct == pytest_approx(event_tct, 0.7)
    benchmark.extra_info["slot_tct"] = round(slot_tct, 3)
    benchmark.extra_info["event_tct"] = round(event_tct, 3)
    benchmark.extra_info["live_tct"] = round(live_tct, 3)


def pytest_approx(value: float, rel: float):
    import pytest

    return pytest.approx(value, rel=rel)

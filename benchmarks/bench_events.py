"""Event-path throughput: scalar closure-per-hop engine vs the fast lane.

Sweeps fleet sizes (10 → 5,000 devices by default) with and without a
seeded fault plan + retry budget, then pushes into serving scale
(20k/50k/100k devices, millions of tasks) where the streaming-metrics
mode keeps memory constant.  Every row verifies an equality contract —
a speedup that changes the answer is a bug, not a result:

* record-mode rows (≤ ``RECORD_MODE_MAX`` devices) compare the two
  engines per task;
* streaming rows compare the engines' constant-size aggregates
  (exact counters, mean within 1e-9);
* above ``SCALAR_MAX`` devices only the fast lane is timed
  (``scalar_s``/``speedup`` are null) — the scalar engine is the thing
  being escaped at that scale.

A separate non-timed probe measures peak traced memory (``tracemalloc``,
which tracks NumPy buffers too) at a fixed fleet while the task count
grows: record mode grows linearly with tasks, streaming mode must stay
flat.  Results land in ``BENCH_events.json`` at the repo root
(``schema: 2``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_events.py
    PYTHONPATH=src python benchmarks/bench_events.py --devices 100 --slots 10

Soft regression gate (CI): compare a fresh sweep against the committed
baseline and fail when any row's *speedup ratio* (machine-independent,
unlike absolute seconds) dropped by more than 30%, when the small-fleet
*overhead share* grew by more than 30%, when the top measured serving
row (≥ ``TOP_SPEEDUP_MIN_DEVICES``) falls under the absolute
``MIN_TOP_SPEEDUP`` floor, or when the streaming memory probe is no
longer flat::

    PYTHONPATH=src python benchmarks/bench_events.py --check BENCH_events.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
import tracemalloc
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # for `tests.helpers` when run as a script
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.offloading import FixedRatioPolicy
from repro.hardware import NetworkProfile
from repro.resilience.faults import FaultPlanSpec, generate_fault_plan
from repro.resilience.recovery import RecoveryPolicy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator

from tests.helpers import random_fleet

DEFAULT_DEVICES = (10, 100, 1000, 5000)
#: Serving-scale extension rows (no faults): record-mode differential up
#: to ``RECORD_MODE_MAX``, streaming on both engines up to
#: ``SCALAR_MAX``, fast-lane-only streaming beyond.
DEFAULT_SERVING = (20000, 50000, 100000)
RECORD_MODE_MAX = 20000
SCALAR_MAX = 50000
#: Tasks per device per slot.  The fast lane targets fleet-scale replay —
#: many concurrent tasks per window — so the sweep uses the top of
#: ``random_fleet``'s wild arrival range rather than a trickle.
ARRIVAL_RATE = 2.0
#: Allowed relative drop in a row's speedup before --check fails.
REGRESSION_TOLERANCE = 0.30
#: Absolute floor on the top measured serving row's speedup (only
#: enforced when the sweep reaches ``TOP_SPEEDUP_MIN_DEVICES``).
MIN_TOP_SPEEDUP = 8.0
TOP_SPEEDUP_MIN_DEVICES = 20000
#: The streaming memory probe's peak at the scaled task count must stay
#: under this multiple of its base-task-count peak ("flat").
MEMORY_FLATNESS_CEILING = 2.0
#: Rows whose scalar run is faster than this are timing noise for the
#: per-row *ratio* gate; they are covered by the overhead-share gate
#: instead (and measured best-of-N to stabilise the share numerator).
SMALL_ROW_SCALAR_S = 0.2
#: Fleets at or below this size are timed best-of-N (see ``_timed_run``).
SMALL_FLEET_DEVICES = 100
SMALL_FLEET_REPEATS = 3


def _make_simulator(n: int, slots: int, faults: bool, seed: int) -> EventSimulator:
    # random_fleet's backend is a single edge box; at thousands of devices
    # that system is unstable (queues diverge and the drain never ends).
    # Scale the shared backend with the fleet so every sweep point drains.
    fleet = random_fleet(seed + 31, n)
    backend_scale = max(1.0, n / 4.0) * (ARRIVAL_RATE / 0.5)
    system = replace(
        fleet,
        edge_flops=fleet.edge_flops * backend_scale,
        cloud_flops=fleet.cloud_flops * backend_scale,
        # The shared edge→cloud backhaul must be provisioned with the
        # fleet as well: at a fixed 2.5 MB/s the deep-exit traffic of a
        # 20k-device fleet diverges (the drain never ends) — a serving
        # deployment scales backhaul with the cluster, so the sweep does.
        edge_cloud=NetworkProfile(
            fleet.edge_cloud.bandwidth * backend_scale,
            fleet.edge_cloud.latency,
        ),
    )
    kwargs = dict(
        system=system,
        arrivals=[PoissonArrivals(ARRIVAL_RATE)] * n,
        seed=seed + 12,
    )
    if faults:
        spec = FaultPlanSpec(
            num_slots=slots,
            num_devices=n,
            drop_prob=0.04,
            corrupt_prob=0.02,
            straggler_prob=0.05,
        )
        kwargs["faults"] = generate_fault_plan(spec, seed=seed + 1)
        kwargs["recovery"] = RecoveryPolicy.default()
    return EventSimulator(**kwargs)


def _timed_run(
    n: int,
    slots: int,
    faults: bool,
    engine: str,
    seed: int,
    metrics: str = "records",
):
    """Best elapsed time over N identical seeded runs plus the result.

    Small fleets finish in milliseconds, where a single sample is mostly
    scheduler jitter; best-of-N keeps the small-fleet rows gateable."""
    repeats = SMALL_FLEET_REPEATS if n <= SMALL_FLEET_DEVICES else 1
    best = float("inf")
    result = None
    for _ in range(repeats):
        sim = _make_simulator(n, slots, faults, seed)
        start = time.perf_counter()
        result = sim.run(
            FixedRatioPolicy(0.5),
            slots,
            drain_limit_factor=200.0,
            engine=engine,
            metrics=metrics,
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _tasks_identical(ra, rb) -> bool:
    return len(ra.tasks) == len(rb.tasks) and all(
        ta.exit_tier == tb.exit_tier
        and ta.completed == tb.completed
        and ta.retries == tb.retries
        and ta.dropped == tb.dropped
        for ta, tb in zip(ra.tasks, rb.tasks)
    )


def _stats_identical(ra, rb) -> bool:
    """Streaming-aggregate cross-check: exact counters, mean within
    1e-9 (the engines complete the same tasks in different fold order,
    so the float sum is equal only up to rounding)."""
    a, b = ra.stats, rb.stats
    if any(
        getattr(a, attr) != getattr(b, attr)
        for attr in ("generated", "completed", "dropped", "shed",
                     "in_flight", "retries")
    ):
        return False
    if a.identity_gap or b.identity_gap:
        return False
    if a.completed and not math.isclose(
        a.mean_tct, b.mean_tct, rel_tol=1e-9, abs_tol=1e-12
    ):
        return False
    return True


def _row(n: int, slots: int, faults: bool, seed: int) -> dict:
    """One sweep row.  The metric mode and which engines are timed
    follow the scale thresholds documented in the module docstring."""
    if n <= RECORD_MODE_MAX:
        metrics = "records"
    else:
        metrics = "streaming"
    fast_s, rb = _timed_run(n, slots, faults, "fast", seed, metrics)
    if n <= SCALAR_MAX:
        scalar_s, ra = _timed_run(n, slots, faults, "scalar", seed, metrics)
        exact = (
            _tasks_identical(ra, rb)
            if metrics == "records"
            else _stats_identical(ra, rb)
        )
        speedup = round(scalar_s / fast_s, 2)
        scalar_out = round(scalar_s, 3)
    else:
        scalar_out, speedup, exact = None, None, None
    row = {
        "devices": n,
        "faults": faults,
        "metrics": metrics,
        "tasks": rb.generated_count,
        "scalar_s": scalar_out,
        "fast_s": round(fast_s, 3),
        "speedup": speedup,
        "exact": exact,
    }
    scalar_text = f"{scalar_out:7.3f}s" if scalar_out is not None else "      —"
    speedup_text = f"{speedup:5.2f}x" if speedup is not None else "    —"
    print(
        f"{n:>6} devices {'with   ' if faults else 'without'} faults "
        f"[{metrics:>9}]: {row['tasks']:>8} tasks, scalar {scalar_text}, "
        f"fast {row['fast_s']:7.3f}s, speedup {speedup_text}, exact={exact}"
    )
    if exact is False:
        raise SystemExit(
            "fast engine diverged from the scalar reference — "
            "refusing to write benchmark results"
        )
    return row


def sweep(
    device_counts: list[int],
    slots: int,
    seed: int = 0,
    serving: list[int] | None = None,
) -> list[dict]:
    rows = []
    for faults in (False, True):
        for n in device_counts:
            rows.append(_row(n, slots, faults, seed))
    for n in serving or []:
        rows.append(_row(n, slots, False, seed))
    return rows


def memory_probe(
    devices: int, base_slots: int, scale: int, seed: int
) -> dict:
    """Peak traced memory, record vs streaming, as the task count grows
    ``scale``× at a fixed fleet (fast lane, no faults, not timed —
    tracemalloc roughly doubles the runtime).

    The fleet is held fixed because streaming memory is O(live tasks) —
    proportional to fleet backlog — while record memory is O(all tasks):
    growing the *slot* axis isolates exactly the term streaming mode is
    supposed to eliminate."""
    peaks: dict[str, dict[str, float]] = {}
    for metrics in ("records", "streaming"):
        for slots in (base_slots, base_slots * scale):
            sim = _make_simulator(devices, slots, False, seed)
            tracemalloc.start()
            sim.run(
                FixedRatioPolicy(0.5),
                slots,
                drain_limit_factor=200.0,
                engine="fast",
                metrics=metrics,
            )
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peaks.setdefault(metrics, {})[str(slots)] = round(peak / 1e6, 2)
    for metrics, by_slots in peaks.items():
        base = by_slots[str(base_slots)]
        top = by_slots[str(base_slots * scale)]
        growth = top / base if base else float("inf")
        print(
            f"memory [{metrics:>9}] {devices} devices: "
            f"{base:8.2f} MB @ {base_slots} slots → {top:8.2f} MB @ "
            f"{base_slots * scale} slots ({growth:.2f}x over {scale}x tasks)"
        )
    return {
        "devices": devices,
        "base_slots": base_slots,
        "scale": scale,
        "peak_mb": peaks,
    }


def _memory_flatness(memory: dict) -> float | None:
    """Streaming peak growth across the probe's task-count scaling."""
    stream = memory.get("peak_mb", {}).get("streaming")
    if not stream:
        return None
    base = stream.get(str(memory["base_slots"]))
    top = stream.get(str(memory["base_slots"] * memory["scale"]))
    if not base or top is None:
        return None
    return top / base


def _overhead_share(rows: list[dict], faults: bool) -> float | None:
    """Small-fleet constant-overhead share: fast-lane seconds at the
    smallest swept fleet over fast-lane seconds at the largest.

    Both numbers come from the same machine and engine, so the share is
    a machine-independent measure of the fast lane's fixed per-window
    cost — exactly the term that makes tiny fleets slower than the
    scalar engine — where the raw small-fleet speedup *ratio* is a
    quotient of two millisecond-scale timings.  Only record-mode rows
    participate: streaming rows time a different retention path."""
    group = sorted(
        (
            r
            for r in rows
            if r["faults"] == faults
            and r.get("metrics", "records") == "records"
        ),
        key=lambda r: r["devices"],
    )
    if len(group) < 2 or not group[-1]["fast_s"]:
        return None
    return group[0]["fast_s"] / group[-1]["fast_s"]


def _absolute_gates(rows: list[dict], memory: dict | None) -> list[str]:
    """Machine-independent floors on the fresh sweep itself (no baseline
    needed): the top measured serving row must clear ``MIN_TOP_SPEEDUP``
    and the streaming memory probe must stay flat."""
    failures = []
    measured = [
        r
        for r in rows
        if r.get("speedup") is not None
        and r["devices"] >= TOP_SPEEDUP_MIN_DEVICES
    ]
    if measured:
        top = max(measured, key=lambda r: r["devices"])
        if top["speedup"] < MIN_TOP_SPEEDUP:
            failures.append(
                f"top-scale speedup {top['speedup']:.2f}x at "
                f"{top['devices']} devices < {MIN_TOP_SPEEDUP:.0f}x floor"
            )
    if memory is not None:
        flatness = _memory_flatness(memory)
        if flatness is not None and flatness > MEMORY_FLATNESS_CEILING:
            failures.append(
                f"streaming peak memory grew {flatness:.2f}x over a "
                f"{memory['scale']}x task-count increase "
                f"(ceiling {MEMORY_FLATNESS_CEILING:.1f}x)"
            )
    return failures


def check(
    baseline_path: Path, rows: list[dict], memory: dict | None = None
) -> int:
    """Soft regression gate against the committed baseline.

    Relative gates: rows with a meaningful scalar runtime must keep
    their speedup within ``REGRESSION_TOLERANCE`` (matched on devices ×
    faults × metric mode), and the small-fleet overhead share (see
    :func:`_overhead_share`) must not grow by more than the same
    tolerance, which is what actually pins the small-fleet case.
    Absolute gates (see :func:`_absolute_gates`) run on the fresh sweep
    regardless of the baseline's contents."""
    baseline = json.loads(baseline_path.read_text())
    base_rows = baseline.get("results", [])
    by_key = {
        (r["devices"], r["faults"], r.get("metrics", "records")): r
        for r in base_rows
    }
    failures = []
    for row in rows:
        base = by_key.get(
            (row["devices"], row["faults"], row.get("metrics", "records"))
        )
        if base is None or base.get("speedup") is None:
            continue
        if row.get("speedup") is None:
            continue
        # Millisecond-scale rows are gated via the overhead share below.
        if row["scalar_s"] < SMALL_ROW_SCALAR_S:
            continue
        floor = base["speedup"] * (1.0 - REGRESSION_TOLERANCE)
        if row["speedup"] < floor:
            failures.append(
                f"{row['devices']} devices faults={row['faults']}: "
                f"speedup {row['speedup']:.2f}x < {floor:.2f}x "
                f"(baseline {base['speedup']:.2f}x - {REGRESSION_TOLERANCE:.0%})"
            )
    for faults in (False, True):
        share = _overhead_share(rows, faults)
        base_share = _overhead_share(
            [
                r
                for r in base_rows
                if (r["devices"], r["faults"], r.get("metrics", "records"))
                in {
                    (row["devices"], row["faults"],
                     row.get("metrics", "records"))
                    for row in rows
                }
            ],
            faults,
        )
        if share is None or base_share is None:
            continue
        ceiling = base_share * (1.0 + REGRESSION_TOLERANCE)
        if share > ceiling:
            failures.append(
                f"small-fleet overhead share faults={faults}: "
                f"{share:.3f} > {ceiling:.3f} "
                f"(baseline {base_share:.3f} + {REGRESSION_TOLERANCE:.0%})"
            )
    failures += _absolute_gates(rows, memory)
    if failures:
        print("REGRESSION: " + "; ".join(failures))
        return 1
    print("speedups, overhead shares, and memory within tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--devices",
        type=int,
        nargs="+",
        default=list(DEFAULT_DEVICES),
        help="fleet sizes for the faults × engines grid",
    )
    parser.add_argument(
        "--serving",
        type=int,
        nargs="*",
        default=list(DEFAULT_SERVING),
        help="serving-scale fleet sizes (no faults; metric mode and "
        "timed engines follow the scale thresholds)",
    )
    parser.add_argument("--slots", type=int, default=20, help="slots per run")
    parser.add_argument(
        "--memory-devices",
        type=int,
        default=1000,
        help="fixed fleet size for the peak-memory probe (0 disables)",
    )
    parser.add_argument(
        "--memory-scale",
        type=int,
        default=4,
        help="task-count multiplier (via slots) for the memory probe",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_events.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare speedups against this committed baseline instead of "
        "overwriting it; exit 1 on a >30%% drop or an absolute-gate miss",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = sweep(args.devices, args.slots, seed=args.seed,
                 serving=args.serving)
    memory = (
        memory_probe(
            args.memory_devices, args.slots, args.memory_scale, args.seed
        )
        if args.memory_devices
        else None
    )
    if args.check is not None:
        return check(args.check, rows, memory)
    payload = {
        "benchmark": "event_engines",
        "schema": 2,
        "policy": "FixedRatioPolicy(0.5)",
        "arrivals": f"Poisson({ARRIVAL_RATE})/device/slot",
        "slots": args.slots,
        "seed": args.seed,
        "results": rows,
        "memory": memory,
    }
    failures = _absolute_gates(rows, memory)
    if failures:
        print("ABSOLUTE GATE FAILED: " + "; ".join(failures))
        return 1
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# -- pytest-benchmark entry point (small configuration) -------------------------


def bench_events_fast(benchmark):
    def run():
        elapsed, result = _timed_run(100, 10, True, "fast", seed=0)
        return len(result.tasks) / elapsed

    tasks_per_sec = benchmark(run)
    benchmark.extra_info["fast_tasks_per_sec_100dev"] = round(tasks_per_sec, 1)


if __name__ == "__main__":
    raise SystemExit(main())

"""Event-path throughput: scalar closure-per-hop engine vs the fast lane.

Sweeps fleet sizes (10 → 5,000 devices by default), with and without a
seeded fault plan + retry budget, and times the identical scenario on
both event engines (:meth:`repro.sim.events.EventSimulator.run` with
``engine="scalar"`` vs ``engine="fast"``).  Every row also verifies the
per-task equality contract — a speedup that changes the answer is a bug,
not a result.  Results land in ``BENCH_events.json`` at the repo root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_events.py
    PYTHONPATH=src python benchmarks/bench_events.py --devices 100 --slots 10

Soft regression gate (CI): compare a fresh sweep against the committed
baseline and fail when any row's *speedup ratio* (machine-independent,
unlike absolute seconds) dropped by more than 30%, or when the
small-fleet *overhead share* — fast-lane seconds at the smallest fleet
over the largest, the fixed per-window cost small fleets pay — grew by
more than 30%::

    PYTHONPATH=src python benchmarks/bench_events.py --check BENCH_events.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # for `tests.helpers` when run as a script
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.offloading import FixedRatioPolicy
from repro.resilience.faults import FaultPlanSpec, generate_fault_plan
from repro.resilience.recovery import RecoveryPolicy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator

from tests.helpers import random_fleet

DEFAULT_DEVICES = (10, 100, 1000, 5000)
#: Tasks per device per slot.  The fast lane targets fleet-scale replay —
#: many concurrent tasks per window — so the sweep uses the top of
#: ``random_fleet``'s wild arrival range rather than a trickle.
ARRIVAL_RATE = 2.0
#: Allowed relative drop in a row's speedup before --check fails.
REGRESSION_TOLERANCE = 0.30
#: Rows whose scalar run is faster than this are timing noise for the
#: per-row *ratio* gate; they are covered by the overhead-share gate
#: instead (and measured best-of-N to stabilise the share numerator).
SMALL_ROW_SCALAR_S = 0.2
#: Fleets at or below this size are timed best-of-N (see ``_timed_run``).
SMALL_FLEET_DEVICES = 100
SMALL_FLEET_REPEATS = 3


def _make_simulator(n: int, slots: int, faults: bool, seed: int) -> EventSimulator:
    # random_fleet's backend is a single edge box; at thousands of devices
    # that system is unstable (queues diverge and the drain never ends).
    # Scale the shared backend with the fleet so every sweep point drains.
    fleet = random_fleet(seed + 31, n)
    backend_scale = max(1.0, n / 4.0) * (ARRIVAL_RATE / 0.5)
    system = replace(
        fleet,
        edge_flops=fleet.edge_flops * backend_scale,
        cloud_flops=fleet.cloud_flops * backend_scale,
    )
    kwargs = dict(
        system=system,
        arrivals=[PoissonArrivals(ARRIVAL_RATE)] * n,
        seed=seed + 12,
    )
    if faults:
        spec = FaultPlanSpec(
            num_slots=slots,
            num_devices=n,
            drop_prob=0.04,
            corrupt_prob=0.02,
            straggler_prob=0.05,
        )
        kwargs["faults"] = generate_fault_plan(spec, seed=seed + 1)
        kwargs["recovery"] = RecoveryPolicy.default()
    return EventSimulator(**kwargs)


def _timed_run(n: int, slots: int, faults: bool, engine: str, seed: int):
    """Best elapsed time over N identical seeded runs plus the result.

    Small fleets finish in milliseconds, where a single sample is mostly
    scheduler jitter; best-of-N keeps the small-fleet rows gateable."""
    repeats = SMALL_FLEET_REPEATS if n <= SMALL_FLEET_DEVICES else 1
    best = float("inf")
    result = None
    for _ in range(repeats):
        sim = _make_simulator(n, slots, faults, seed)
        start = time.perf_counter()
        result = sim.run(
            FixedRatioPolicy(0.5), slots, drain_limit_factor=200.0, engine=engine
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def sweep(
    device_counts: list[int], slots: int, seed: int = 0
) -> list[dict]:
    rows = []
    for faults in (False, True):
        for n in device_counts:
            scalar_s, ra = _timed_run(n, slots, faults, "scalar", seed)
            fast_s, rb = _timed_run(n, slots, faults, "fast", seed)
            exact = len(ra.tasks) == len(rb.tasks) and all(
                ta.exit_tier == tb.exit_tier
                and ta.completed == tb.completed
                and ta.retries == tb.retries
                and ta.dropped == tb.dropped
                for ta, tb in zip(ra.tasks, rb.tasks)
            )
            row = {
                "devices": n,
                "faults": faults,
                "tasks": len(ra.tasks),
                "scalar_s": round(scalar_s, 3),
                "fast_s": round(fast_s, 3),
                "speedup": round(scalar_s / fast_s, 2),
                "exact": exact,
            }
            rows.append(row)
            print(
                f"{n:>6} devices {'with   ' if faults else 'without'} faults: "
                f"{row['tasks']:>6} tasks, scalar {scalar_s:7.3f}s, "
                f"fast {fast_s:7.3f}s, speedup {row['speedup']:5.2f}x, "
                f"exact={exact}"
            )
            if not exact:
                raise SystemExit(
                    "fast engine diverged from the scalar reference — "
                    "refusing to write benchmark results"
                )
    return rows


def _overhead_share(rows: list[dict], faults: bool) -> float | None:
    """Small-fleet constant-overhead share: fast-lane seconds at the
    smallest swept fleet over fast-lane seconds at the largest.

    Both numbers come from the same machine and engine, so the share is
    a machine-independent measure of the fast lane's fixed per-window
    cost — exactly the term that makes tiny fleets slower than the
    scalar engine — where the raw small-fleet speedup *ratio* is a
    quotient of two millisecond-scale timings."""
    group = sorted(
        (r for r in rows if r["faults"] == faults), key=lambda r: r["devices"]
    )
    if len(group) < 2 or not group[-1]["fast_s"]:
        return None
    return group[0]["fast_s"] / group[-1]["fast_s"]


def check(baseline_path: Path, rows: list[dict]) -> int:
    """Soft regression gate against the committed baseline.

    Two gates: rows with a meaningful scalar runtime must keep their
    speedup within ``REGRESSION_TOLERANCE`` (matched on devices ×
    faults); and the small-fleet overhead share (see
    :func:`_overhead_share`) must not grow by more than the same
    tolerance, which is what actually pins the small-fleet case."""
    baseline = json.loads(baseline_path.read_text())
    base_rows = baseline.get("results", [])
    by_key = {(r["devices"], r["faults"]): r for r in base_rows}
    failures = []
    for row in rows:
        base = by_key.get((row["devices"], row["faults"]))
        if base is None or base.get("speedup") is None:
            continue
        # Millisecond-scale rows are gated via the overhead share below.
        if row["scalar_s"] < SMALL_ROW_SCALAR_S:
            continue
        floor = base["speedup"] * (1.0 - REGRESSION_TOLERANCE)
        if row["speedup"] < floor:
            failures.append(
                f"{row['devices']} devices faults={row['faults']}: "
                f"speedup {row['speedup']:.2f}x < {floor:.2f}x "
                f"(baseline {base['speedup']:.2f}x - {REGRESSION_TOLERANCE:.0%})"
            )
    for faults in (False, True):
        share = _overhead_share(rows, faults)
        base_share = _overhead_share(
            [
                r
                for r in base_rows
                if (r["devices"], r["faults"])
                in {(row["devices"], row["faults"]) for row in rows}
            ],
            faults,
        )
        if share is None or base_share is None:
            continue
        ceiling = base_share * (1.0 + REGRESSION_TOLERANCE)
        if share > ceiling:
            failures.append(
                f"small-fleet overhead share faults={faults}: "
                f"{share:.3f} > {ceiling:.3f} "
                f"(baseline {base_share:.3f} + {REGRESSION_TOLERANCE:.0%})"
            )
    if failures:
        print("REGRESSION: " + "; ".join(failures))
        return 1
    print("speedups and overhead shares within tolerance of the baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--devices",
        type=int,
        nargs="+",
        default=list(DEFAULT_DEVICES),
        help="fleet sizes to sweep",
    )
    parser.add_argument("--slots", type=int, default=20, help="slots per run")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_events.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare speedups against this committed baseline instead of "
        "overwriting it; exit 1 on a >30%% drop",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = sweep(args.devices, args.slots, seed=args.seed)
    if args.check is not None:
        return check(args.check, rows)
    payload = {
        "benchmark": "event_engines",
        "policy": "FixedRatioPolicy(0.5)",
        "arrivals": f"Poisson({ARRIVAL_RATE})/device/slot",
        "slots": args.slots,
        "seed": args.seed,
        "results": rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# -- pytest-benchmark entry point (small configuration) -------------------------


def bench_events_fast(benchmark):
    def run():
        elapsed, result = _timed_run(100, 10, True, "fast", seed=0)
        return len(result.tasks) / elapsed

    tasks_per_sec = benchmark(run)
    benchmark.extra_info["fast_tasks_per_sec_100dev"] = round(tasks_per_sec, 1)


if __name__ == "__main__":
    raise SystemExit(main())

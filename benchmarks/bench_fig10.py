"""Fig. 10 — exit-setting and offloading ablations.

Paper outcomes: (a) LEIME's exit setting wins, with bigger gains on the
large models; (b) the online offloading policy's advantage grows with the
arrival rate (≈1.1×/1.2×/1.8× at low/mid/high rates).
"""

from __future__ import annotations

from repro.experiments.fig10 import run_fig10


def bench_fig10(benchmark):
    result = benchmark.pedantic(
        run_fig10, kwargs={"num_slots": 120, "seed": 0}, rounds=1, iterations=1
    )

    # (a) LEIME's setting is within 10% of the best strategy everywhere and
    # clearly beats the worst strategy on the large models.
    for row in result.exit_ablation:
        best = min(row.tct.values())
        assert row.tct["LEIME"] <= best * 1.10, row.model
    large_gain = min(
        max(row.speedup(s) for s in ("min_comp", "min_tran", "mean"))
        for row in result.exit_ablation
        if row.model in ("inception-v3", "resnet-34")
    )
    assert large_gain > 1.2

    # (b) the online policy's edge grows with load.
    speedups = [row.mean_baseline_speedup() for row in result.offload_ablation]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.3

    benchmark.extra_info["exit_ablation_tct"] = {
        row.model: {k: round(v, 2) for k, v in row.tct.items()}
        for row in result.exit_ablation
    }
    benchmark.extra_info["offload_speedups"] = [round(s, 2) for s in speedups]

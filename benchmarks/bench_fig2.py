"""Fig. 2 — exit-setting sensitivity to capability, load, and model."""

from __future__ import annotations

from repro.experiments.fig2 import run_fig2


def bench_fig2(benchmark):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)

    pi, nano = result.device_sweeps
    light, heavy = result.load_sweeps
    # Paper shapes: faster device → deeper First-exit; heavier edge load →
    # shallower Second-exit.
    assert nano.optimal_exit > pi.optimal_exit
    assert heavy.optimal_exit < light.optimal_exit

    benchmark.extra_info["fig2a_first_exit_pi"] = pi.optimal_exit
    benchmark.extra_info["fig2a_first_exit_nano"] = nano.optimal_exit
    benchmark.extra_info["fig2b_second_exit_light"] = light.optimal_exit
    benchmark.extra_info["fig2b_second_exit_heavy"] = heavy.optimal_exit
    benchmark.extra_info["fig2c_first_exits"] = {
        s.label: s.optimal_exit for s in result.model_first_sweeps
    }
    benchmark.extra_info["fig2d_second_exits"] = {
        s.label: s.optimal_exit for s in result.model_second_sweeps
    }

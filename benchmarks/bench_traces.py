"""Wild-trace replay: DPP vs. the baselines under dynamic conditions.

Generates a seeded wild trace (diurnal + Gilbert-Elliott bandwidth,
flash-crowd arrivals, Poisson churn), replays it through every scheme on
both slot-simulator paths, verifies the scalar and vectorized
trajectories are byte-identical, and records each scheme's wild-trace
TCT, backlog, and the vectorized replay throughput.  Results land in
``BENCH_traces.json`` at the repo root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_traces.py
    PYTHONPATH=src python benchmarks/bench_traces.py --slots 80 --devices 8

or through the benchmark suite (small configuration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_traces.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.experiments.common import SCHEME_BUILDERS, TestbedConfig
from repro.experiments.fig_wild import wild_spec
from repro.traces.generators import generate_trace
from repro.traces.replay import replay_trace


def _identical(scalar, fast) -> bool:
    return all(
        a.queue_local == b.queue_local
        and a.queue_edge == b.queue_edge
        and a.total_time == b.total_time
        and a.ratios == b.ratios
        for a, b in zip(scalar.records, fast.records)
    )


def run(
    num_slots: int,
    num_devices: int,
    arrival_rate: float,
    seed: int,
    skip_scalar: bool = False,
) -> dict:
    config = TestbedConfig(
        model="inception-v3",
        num_devices=num_devices,
        arrival_rate=arrival_rate,
    )
    spec = wild_spec(num_slots, num_devices, arrival_rate)
    trace = generate_trace(spec, seed=seed)
    results = []
    for name, builder in SCHEME_BUILDERS.items():
        scheme = builder(config)
        system = config.system(scheme.partition)
        start = time.perf_counter()
        fast = replay_trace(
            system, trace, scheme.policy, seed=seed, vectorized=True
        )
        fast_elapsed = time.perf_counter() - start
        entry = {
            "scheme": name,
            "mean_tct_s": round(fast.mean_tct, 6),
            "p95_tct_s": round(fast.tct_percentile(95), 6),
            "final_backlog": round(fast.final_backlog, 3),
            "stable": fast.is_stable(),
            "vectorized_slots_per_sec": round(num_slots / fast_elapsed, 2),
        }
        if not skip_scalar:
            start = time.perf_counter()
            scalar = replay_trace(system, trace, scheme.policy, seed=seed)
            scalar_elapsed = time.perf_counter() - start
            entry["scalar_slots_per_sec"] = round(
                num_slots / scalar_elapsed, 2
            )
            entry["paths_identical"] = _identical(scalar, fast)
            if not entry["paths_identical"]:
                raise AssertionError(
                    f"scalar and vectorized replays diverged for {name}"
                )
        results.append(entry)
        print(
            f"{name:<14} wild TCT {entry['mean_tct_s']:.3f} s, "
            f"backlog {entry['final_backlog']:.1f}, "
            f"{entry['vectorized_slots_per_sec']:.0f} slots/s vectorized"
            + (
                ", paths byte-identical"
                if entry.get("paths_identical")
                else ""
            )
        )
    return {
        "benchmark": "wild_traces",
        "slots": num_slots,
        "devices": num_devices,
        "arrival_rate": arrival_rate,
        "seed": seed,
        "trace": {
            "channels": list(trace.names),
            "summary": trace.describe(),
        },
        "results": results,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slots", type=int, default=160)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--arrival-rate", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-scalar",
        action="store_true",
        help="time only the vectorized path (skips the identity check)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_traces.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    payload = run(
        args.slots,
        args.devices,
        args.arrival_rate,
        args.seed,
        skip_scalar=args.skip_scalar,
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")


# -- pytest-benchmark entry point (small configuration) -------------------------


def bench_wild_trace_replay(benchmark):
    payload = benchmark(
        lambda: run(40, 4, 0.3, seed=0, skip_scalar=True)
    )
    leime = payload["results"][0]
    benchmark.extra_info["leime_wild_tct_s"] = leime["mean_tct_s"]
    benchmark.extra_info["leime_slots_per_sec"] = leime[
        "vectorized_slots_per_sec"
    ]


if __name__ == "__main__":
    main()

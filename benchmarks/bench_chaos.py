"""Checkpoint overhead: hooked vs plain replay on the hot execution paths.

Sweeps fleet sizes and times the identical scenario with and without
per-slot checkpointing (``checkpoint_every=1`` into an in-memory sink)
on the vectorized slot path and the fast event engine.  Every hooked
event row also verifies kill-at-mid-slot/resume identity against the
unhooked run, and every fluid row verifies byte-identical records —
checkpoints that change the answer are worse than no checkpoints, so a
divergence refuses to write results.  Results land in
``BENCH_chaos.json`` at the repo root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_chaos.py
    PYTHONPATH=src python benchmarks/bench_chaos.py --devices 10 --slots 20

Soft regression gate (CI): compare a fresh sweep against the committed
baseline and fail when any row's *overhead ratio* (hooked time over
plain time — machine-independent, unlike absolute seconds) grew by more
than 30%::

    PYTHONPATH=src python benchmarks/bench_chaos.py --check BENCH_chaos.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # for `tests.helpers` when run as a script
    sys.path.insert(0, str(REPO_ROOT))

from repro.chaos.checkpoint import (
    CheckpointLog,
    Killed,
    KillSwitch,
    checkpoint_from_bytes,
    checkpoint_to_bytes,
)
from repro.core.offloading import FixedRatioPolicy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator

from tests.helpers import random_fleet

DEFAULT_DEVICES = (10, 100, 1000)
RATE = 0.5
#: Kill/resume identity checks only below this fleet size (the check
#: runs the scenario twice more).
RESUME_CHECK_MAX_DEVICES = 100
#: Allowed relative growth in a row's overhead ratio before --check fails.
REGRESSION_TOLERANCE = 0.30


def _scaled_fleet(n: int, seed: int):
    # random_fleet's backend is a single edge box; scale it with the
    # fleet (as bench_events does) so the load stays stable per device.
    fleet = random_fleet(seed + 47, n)
    backend_scale = max(1.0, n / 4.0)
    return replace(
        fleet,
        edge_flops=fleet.edge_flops * backend_scale,
        cloud_flops=fleet.cloud_flops * backend_scale,
    )


def _event_run(n: int, slots: int, seed: int, hooks: bool, **kwargs):
    sim = EventSimulator(
        system=_scaled_fleet(n, seed),
        arrivals=[PoissonArrivals(RATE)] * n,
        seed=seed + 12,
    )
    if hooks and "checkpoint_sink" not in kwargs:
        kwargs = dict(kwargs, checkpoint_every=1, checkpoint_sink=CheckpointLog())
    start = time.perf_counter()
    result = sim.run(
        FixedRatioPolicy(0.5),
        slots,
        drain_limit_factor=200.0,
        engine="fast",
        **kwargs,
    )
    return time.perf_counter() - start, result


def _fluid_run(n: int, slots: int, seed: int, hooks: bool, **kwargs):
    sim = SlotSimulator(
        system=_scaled_fleet(n, seed),
        arrivals=[PoissonArrivals(RATE)] * n,
        seed=seed + 12,
        vectorized=True,
    )
    if hooks and "checkpoint_sink" not in kwargs:
        kwargs = dict(kwargs, checkpoint_every=1, checkpoint_sink=CheckpointLog())
    start = time.perf_counter()
    result = sim.run(FixedRatioPolicy(0.5), slots, **kwargs)
    return time.perf_counter() - start, result


def _resume_identical(runner, n: int, slots: int, seed: int, plain) -> bool:
    """Kill at mid-slot, round-trip the checkpoint through bytes, resume,
    and compare against the plain run."""
    switch = KillSwitch(slots // 2)
    try:
        runner(n, slots, seed, hooks=False, checkpoint_every=1,
               checkpoint_sink=switch)
        return False  # the kill switch never fired
    except Killed as killed:
        checkpoint = checkpoint_from_bytes(
            checkpoint_to_bytes(killed.checkpoint)
        )
    _, resumed = runner(n, slots, seed, hooks=False, resume_from=checkpoint)
    if hasattr(plain, "tasks"):
        return resumed.tasks == plain.tasks
    return list(resumed.records) == list(plain.records)


def sweep(device_counts: list[int], slots: int, seed: int = 0) -> list[dict]:
    rows = []
    for path, runner in (("events-fast", _event_run), ("fluid-vec", _fluid_run)):
        for n in device_counts:
            hooked_s, hooked = runner(n, slots, seed, hooks=True)
            plain_s, plain = runner(n, slots, seed, hooks=False)
            if hasattr(plain, "tasks"):
                identical = hooked.tasks == plain.tasks
                tasks = len(plain.tasks)
            else:
                identical = list(hooked.records) == list(plain.records)
                tasks = round(plain.total_generated, 1)
            resume_ok = None
            if n <= RESUME_CHECK_MAX_DEVICES:
                resume_ok = _resume_identical(runner, n, slots, seed, plain)
            row = {
                "path": path,
                "devices": n,
                "tasks": tasks,
                "hooked_s": round(hooked_s, 3),
                "plain_s": round(plain_s, 3),
                "overhead": round(hooked_s / plain_s, 3),
                "identical": identical,
                "resume_ok": resume_ok,
            }
            rows.append(row)
            print(
                f"{path:>11} {n:>6} devices: {tasks:>8} tasks, "
                f"hooked {hooked_s:7.3f}s, plain {plain_s:7.3f}s, "
                f"overhead {row['overhead']:5.3f}x, "
                f"identical={identical}, resume_ok={resume_ok}"
            )
            if not identical or resume_ok is False:
                raise SystemExit(
                    "checkpoint hooks changed the answer or resume "
                    "diverged — refusing to write benchmark results"
                )
    return rows


def check(baseline_path: Path, rows: list[dict]) -> int:
    """Soft regression gate: fail when a row's hooked/plain overhead
    ratio grew >30% against the committed baseline (matched on
    path × devices)."""
    baseline = json.loads(baseline_path.read_text())
    by_key = {
        (r["path"], r["devices"]): r for r in baseline.get("results", [])
    }
    failures = []
    for row in rows:
        base = by_key.get((row["path"], row["devices"]))
        if base is None or base.get("overhead") is None:
            continue
        # Sub-second rows are timing noise, not signal.
        if row["plain_s"] < 0.2:
            continue
        ceiling = base["overhead"] * (1.0 + REGRESSION_TOLERANCE)
        if row["overhead"] > ceiling:
            failures.append(
                f"{row['path']} {row['devices']} devices: overhead "
                f"{row['overhead']:.3f}x > {ceiling:.3f}x "
                f"(baseline {base['overhead']:.3f}x + {REGRESSION_TOLERANCE:.0%})"
            )
    if failures:
        print("REGRESSION: " + "; ".join(failures))
        return 1
    print("overhead ratios within tolerance of the committed baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--devices",
        type=int,
        nargs="+",
        default=list(DEFAULT_DEVICES),
        help="fleet sizes to sweep",
    )
    parser.add_argument("--slots", type=int, default=40, help="slots per run")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_chaos.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare overhead ratios against this committed baseline "
        "instead of overwriting it; exit 1 on a >30%% growth",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = sweep(args.devices, args.slots, seed=args.seed)
    if args.check is not None:
        return check(args.check, rows)
    payload = {
        "benchmark": "chaos_checkpoints",
        "policy": "FixedRatioPolicy(0.5)",
        "arrivals": f"PoissonArrivals({RATE})",
        "checkpoint_every": 1,
        "slots": args.slots,
        "seed": args.seed,
        "results": rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# -- pytest-benchmark entry point (small configuration) -------------------------


def bench_chaos_checkpointed(benchmark):
    def run():
        elapsed, result = _event_run(100, 20, seed=0, hooks=True)
        return len(result.tasks) / elapsed

    tasks_per_sec = benchmark(run)
    benchmark.extra_info["checkpointed_tasks_per_sec_100dev"] = round(
        tasks_per_sec, 1
    )


if __name__ == "__main__":
    raise SystemExit(main())

"""QoS-layer overhead: class-aware vs overload-only replay under a burst.

Sweeps fleet sizes through the canonical mixed-QoS burst
(:func:`repro.traces.generators.canonical_mixed_qos_burst`) and times
the identical scenario with the full QoS layer (classes + warm pool +
class-aware ladder) against the PR 5 overload-only baseline on the fast
event engine and the vectorized slot path.  Every event row verifies
the extended SLO identity ``generated = completed + dropped + shed +
in-flight`` plus the per-class identity gaps, and — at small fleets,
where the scalar reference is affordable — per-task equality (QoS tags
included) between the two event engines; every fluid row verifies the
per-class conservation ``sum_c generated_c = admitted + shed``.
Results land in ``BENCH_qos.json`` at the repo root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_qos.py
    PYTHONPATH=src python benchmarks/bench_qos.py --devices 10 --slots 20

Soft regression gate (CI): compare a fresh sweep against the committed
baseline and fail when any row's *overhead ratio* (QoS-governed time
over overload-only time — machine-independent, unlike absolute
seconds) grew by more than 30%::

    PYTHONPATH=src python benchmarks/bench_qos.py --check BENCH_qos.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # for `tests.helpers` when run as a script
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.offloading import FixedRatioPolicy
from repro.resilience.overload import OverloadControl
from repro.resilience.qos import QoSConfig
from repro.sim.arrivals import TraceArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator
from repro.traces.generators import canonical_mixed_qos_burst

from tests.helpers import random_fleet

DEFAULT_DEVICES = (10, 100, 1000)
#: Base tasks per device per slot; the burst multiplies this.
BASE_RATE = 0.5
BURST_MAGNITUDE = 10.0
#: Scalar-engine identity checks only below this fleet size (the scalar
#: reference is O(tasks·hops) Python closures — fine at 10 devices,
#: pointless to wait on at 1,000).
SCALAR_CHECK_MAX_DEVICES = 100
#: Allowed relative growth in a row's overhead ratio before --check fails.
REGRESSION_TOLERANCE = 0.30

#: The QoS layer under test: a real memory budget (so the warm pool
#: evicts and reloads throughout the burst) and a shed budget (so the
#: utility-per-cost ordering runs every degraded slot).
QOS = QoSConfig(
    memory_fraction=0.5, cold_start_seconds=0.25, shed_budget=50.0
)


def _scaled_fleet(n: int, seed: int):
    # random_fleet's backend is a single edge box; scale it with the fleet
    # (as bench_events does) so the *base* load is stable and only the
    # burst window overloads.
    fleet = random_fleet(seed + 31, n)
    backend_scale = max(1.0, n / 4.0) * (BASE_RATE / 0.5)
    return replace(
        fleet,
        edge_flops=fleet.edge_flops * backend_scale,
        cloud_flops=fleet.cloud_flops * backend_scale,
    )


def _arrivals(n: int, slots: int) -> list[TraceArrivals]:
    rates = canonical_mixed_qos_burst(
        num_slots=slots,
        num_devices=n,
        base_rate=BASE_RATE,
        magnitude=BURST_MAGNITUDE,
    )
    return [TraceArrivals.from_series(rates[:, i]) for i in range(n)]


def _event_run(
    n: int,
    slots: int,
    qos: bool,
    seed: int,
    engine: str = "fast",
):
    sim = EventSimulator(
        system=_scaled_fleet(n, seed),
        arrivals=_arrivals(n, slots),
        seed=seed + 12,
        overload=OverloadControl(),
        qos=QOS if qos else None,
    )
    start = time.perf_counter()
    result = sim.run(
        FixedRatioPolicy(0.5), slots, drain_limit_factor=200.0, engine=engine
    )
    return time.perf_counter() - start, result


def _fluid_run(n: int, slots: int, qos: bool, seed: int):
    sim = SlotSimulator(
        system=_scaled_fleet(n, seed),
        arrivals=_arrivals(n, slots),
        seed=seed + 12,
        vectorized=True,
        overload=OverloadControl(),
        qos=QOS if qos else None,
    )
    start = time.perf_counter()
    result = sim.run(FixedRatioPolicy(0.5), slots)
    return time.perf_counter() - start, result


def sweep(device_counts: list[int], slots: int, seed: int = 0) -> list[dict]:
    rows = []
    for n in device_counts:
        qos_s, rq = _event_run(n, slots, qos=True, seed=seed)
        base_s, _ = _event_run(n, slots, qos=False, seed=seed)
        identity = len(rq.tasks) == (
            len(rq.completed)
            + rq.dropped_count
            + rq.shed_count
            + rq.in_flight_count
        )
        class_identity = all(
            abs(gap) < 1e-9 for gap in rq.class_identity_gaps().values()
        )
        exact = None
        if n <= SCALAR_CHECK_MAX_DEVICES:
            _, rs = _event_run(n, slots, qos=True, seed=seed, engine="scalar")
            exact = (
                len(rs.tasks) == len(rq.tasks)
                and rs.modes == rq.modes
                and all(
                    a.exit_tier == b.exit_tier
                    and a.completed == b.completed
                    and a.shed == b.shed
                    and a.dropped == b.dropped
                    and a.qos == b.qos
                    for a, b in zip(rs.tasks, rq.tasks)
                )
            )
        row = {
            "path": "events",
            "devices": n,
            "tasks": len(rq.tasks),
            "shed": rq.shed_count,
            "max_mode": max(rq.modes) if rq.modes else 0,
            "qos_s": round(qos_s, 3),
            "baseline_s": round(base_s, 3),
            "overhead": round(qos_s / base_s, 3),
            "identity": identity and class_identity,
            "exact": exact,
        }
        rows.append(row)
        print(
            f"events {n:>6} devices: {row['tasks']:>7} tasks, "
            f"qos {qos_s:7.3f}s, overload-only {base_s:7.3f}s, "
            f"overhead {row['overhead']:5.3f}x, shed {row['shed']}, "
            f"identity={row['identity']}, exact={exact}"
        )
        if not row["identity"] or exact is False:
            raise SystemExit(
                "QoS accounting violated an identity or the engines "
                "diverged — refusing to write benchmark results"
            )

        qos_s, fq = _fluid_run(n, slots, qos=True, seed=seed)
        base_s, _ = _fluid_run(n, slots, qos=False, seed=seed)
        flow = fq.class_flow
        conserved = flow is not None and math.isclose(
            sum(flow.generated),
            fq.total_arrivals + fq.total_shed,
            rel_tol=1e-9,
            abs_tol=1e-6,
        )
        row = {
            "path": "fluid",
            "devices": n,
            "tasks": round(fq.total_generated, 1),
            "shed": round(fq.total_shed, 1),
            "max_mode": int(fq.mode_timeline().max()),
            "qos_s": round(qos_s, 3),
            "baseline_s": round(base_s, 3),
            "overhead": round(qos_s / base_s, 3),
            "identity": conserved,
            "exact": None,
        }
        rows.append(row)
        print(
            f"fluid  {n:>6} devices: {row['tasks']:>7} tasks, "
            f"qos {qos_s:7.3f}s, overload-only {base_s:7.3f}s, "
            f"overhead {row['overhead']:5.3f}x, shed {row['shed']}, "
            f"conserved={conserved}"
        )
        if not conserved:
            raise SystemExit(
                "per-class fluid conservation violated — refusing to "
                "write benchmark results"
            )
    return rows


def check(baseline_path: Path, rows: list[dict]) -> int:
    """Soft regression gate: fail when a row's qos/overload-only
    overhead ratio grew >30% against the committed baseline (matched on
    path × devices)."""
    baseline = json.loads(baseline_path.read_text())
    by_key = {
        (r["path"], r["devices"]): r for r in baseline.get("results", [])
    }
    failures = []
    for row in rows:
        base = by_key.get((row["path"], row["devices"]))
        if base is None or base.get("overhead") is None:
            continue
        # Sub-second rows are timing noise, not signal.
        if row["baseline_s"] < 0.2:
            continue
        ceiling = base["overhead"] * (1.0 + REGRESSION_TOLERANCE)
        if row["overhead"] > ceiling:
            failures.append(
                f"{row['path']} {row['devices']} devices: overhead "
                f"{row['overhead']:.3f}x > {ceiling:.3f}x "
                f"(baseline {base['overhead']:.3f}x + {REGRESSION_TOLERANCE:.0%})"
            )
    if failures:
        print("REGRESSION: " + "; ".join(failures))
        return 1
    print("overhead ratios within tolerance of the committed baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--devices",
        type=int,
        nargs="+",
        default=list(DEFAULT_DEVICES),
        help="fleet sizes to sweep",
    )
    parser.add_argument("--slots", type=int, default=40, help="slots per run")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_qos.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare overhead ratios against this committed baseline "
        "instead of overwriting it; exit 1 on a >30%% growth",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = sweep(args.devices, args.slots, seed=args.seed)
    if args.check is not None:
        return check(args.check, rows)
    payload = {
        "benchmark": "qos_layer",
        "policy": "FixedRatioPolicy(0.5)",
        "arrivals": (
            f"canonical_mixed_qos_burst(base={BASE_RATE}, "
            f"magnitude={BURST_MAGNITUDE})"
        ),
        "qos": repr(QOS),
        "slots": args.slots,
        "seed": args.seed,
        "results": rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# -- pytest-benchmark entry point (small configuration) -------------------------


def bench_qos_governed(benchmark):
    def run():
        elapsed, result = _event_run(100, 20, qos=True, seed=0)
        return len(result.tasks) / elapsed

    tasks_per_sec = benchmark(run)
    benchmark.extra_info["qos_tasks_per_sec_100dev"] = round(
        tasks_per_sec, 1
    )


if __name__ == "__main__":
    raise SystemExit(main())

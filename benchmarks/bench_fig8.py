"""Fig. 8 — TCT across the four DNNs on Raspberry Pi and Jetson Nano.

Paper values: LEIME achieves 1.6-13.2× speedup on the Pi and 1.1-10.3× on
the Nano; Neurosurgeon tracks LEIME's curve shape, Edgent/DDNN fluctuate.
"""

from __future__ import annotations

from repro.experiments.fig8 import run_fig8


def bench_fig8(benchmark):
    result = benchmark.pedantic(
        run_fig8, kwargs={"num_slots": 120, "seed": 0}, rounds=1, iterations=1
    )

    pi, nano = result.grids
    # On the Pi, LEIME wins every cell outright.
    for model in pi.models:
        for scheme, tct in pi.tct[model].items():
            if scheme != "LEIME":
                assert tct > pi.tct[model]["LEIME"], (model, scheme)
    # On the Nano the paper's own minimum speedup is 1.1×; we require LEIME
    # to be within 15% of the best scheme in every cell and strictly best
    # on the large models against Neurosurgeon/DDNN.
    for model in nano.models:
        best = min(nano.tct[model].values())
        assert nano.tct[model]["LEIME"] <= best * 1.15, model

    for grid in result.grids:
        low, high = grid.speedup_range()
        benchmark.extra_info[f"{grid.device}_speedup_range"] = (
            round(low, 1),
            round(high, 1),
        )

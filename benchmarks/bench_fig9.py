"""Fig. 9 — stability under dynamic task arrival rates.

Paper outcomes: LEIME has the lowest mean TCT and the flattest timeline on
both devices; DDNN blows up on the Pi but stays bounded on the Nano.
"""

from __future__ import annotations

from repro.experiments.fig9 import run_fig9


def bench_fig9(benchmark):
    result = benchmark.pedantic(
        run_fig9, kwargs={"num_slots": 200, "seed": 0}, rounds=1, iterations=1
    )

    pi, nano = result.panels
    for panel in result.panels:
        leime = panel.by_scheme("LEIME")
        for timeline in panel.timelines:
            if timeline.scheme == "LEIME":
                continue
            # LEIME is (near-)lowest and flattest: no benchmark may beat it
            # by more than 15% on mean, and its std is the smallest band.
            assert leime.mean <= timeline.mean * 1.15, timeline.scheme
            assert leime.std <= timeline.std * 1.25, timeline.scheme
        benchmark.extra_info[f"{panel.device}_mean_tct"] = {
            t.scheme: round(t.mean, 2) for t in panel.timelines
        }

    # DDNN's burst behaviour: catastrophic on the Pi, bounded on the Nano.
    assert pi.by_scheme("DDNN").peak > 3 * nano.by_scheme("DDNN").peak / 2
    assert nano.by_scheme("DDNN").peak < pi.by_scheme("DDNN").peak

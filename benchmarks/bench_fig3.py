"""Fig. 3 — TCT vs offloading ratio under dynamic factors."""

from __future__ import annotations

from repro.experiments.fig3 import run_fig3


def bench_fig3(benchmark):
    result = benchmark.pedantic(
        run_fig3, kwargs={"num_slots": 150, "seed": 0}, rounds=1, iterations=1
    )

    # Paper shapes: every dynamic factor moves the optimal ratio; 8 Mbps
    # forces full offloading; more bandwidth lowers the optimum.
    assert result.bandwidth_curves[0].optimal_ratio == 1.0
    assert (
        result.bandwidth_curves[-1].optimal_ratio
        < result.bandwidth_curves[0].optimal_ratio
    )
    assert len({c.optimal_ratio for c in result.arrival_curves}) > 1
    assert len({c.optimal_ratio for c in result.latency_curves}) > 1

    for panel, curves in result.all_panels().items():
        benchmark.extra_info[f"{panel}_optima"] = {
            c.label: c.optimal_ratio for c in curves
        }

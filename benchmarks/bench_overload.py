"""Overload-layer overhead: governed vs ungoverned replay under a crowd.

Sweeps fleet sizes through the canonical flash crowd
(:func:`repro.traces.generators.canonical_flash_crowd`) and times the
identical scenario with and without the overload layer (admission gate +
backpressure + degradation ladder) on the fast event engine and the
vectorized slot path.  Every event row also verifies the extended SLO
identity ``generated = completed + dropped + shed + in-flight`` and —
at small fleets, where the scalar reference is affordable — per-task
equality between the two event engines; every fluid row verifies
``generated = admitted + shed`` conservation.  Results land in
``BENCH_overload.json`` at the repo root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_overload.py
    PYTHONPATH=src python benchmarks/bench_overload.py --devices 10 --slots 20

Soft regression gate (CI): compare a fresh sweep against the committed
baseline and fail when any row's *overhead ratio* (governed time over
ungoverned time — machine-independent, unlike absolute seconds) grew by
more than 30%::

    PYTHONPATH=src python benchmarks/bench_overload.py --check BENCH_overload.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # for `tests.helpers` when run as a script
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.offloading import FixedRatioPolicy
from repro.resilience.overload import OverloadControl
from repro.sim.arrivals import TraceArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator
from repro.traces.generators import canonical_flash_crowd

from tests.helpers import random_fleet

DEFAULT_DEVICES = (10, 100, 1000)
#: Base tasks per device per slot; the crowd multiplies this.
BASE_RATE = 0.5
CROWD_MAGNITUDE = 10.0
#: Scalar-engine identity checks only below this fleet size (the scalar
#: reference is O(tasks·hops) Python closures — fine at 10 devices,
#: pointless to wait on at 1,000).
SCALAR_CHECK_MAX_DEVICES = 100
#: Allowed relative growth in a row's overhead ratio before --check fails.
REGRESSION_TOLERANCE = 0.30


def _scaled_fleet(n: int, seed: int):
    # random_fleet's backend is a single edge box; scale it with the fleet
    # (as bench_events does) so the *base* load is stable and only the
    # crowd window overloads.
    fleet = random_fleet(seed + 31, n)
    backend_scale = max(1.0, n / 4.0) * (BASE_RATE / 0.5)
    return replace(
        fleet,
        edge_flops=fleet.edge_flops * backend_scale,
        cloud_flops=fleet.cloud_flops * backend_scale,
    )


def _arrivals(n: int, slots: int) -> list[TraceArrivals]:
    rates = canonical_flash_crowd(
        num_slots=slots,
        num_devices=n,
        base_rate=BASE_RATE,
        magnitude=CROWD_MAGNITUDE,
        crowd_start=slots // 4,
        crowd_stop=slots // 2,
    )
    return [TraceArrivals.from_series(rates[:, i]) for i in range(n)]


def _event_run(
    n: int,
    slots: int,
    governed: bool,
    seed: int,
    engine: str = "fast",
):
    sim = EventSimulator(
        system=_scaled_fleet(n, seed),
        arrivals=_arrivals(n, slots),
        seed=seed + 12,
        overload=OverloadControl() if governed else None,
    )
    start = time.perf_counter()
    result = sim.run(
        FixedRatioPolicy(0.5), slots, drain_limit_factor=200.0, engine=engine
    )
    return time.perf_counter() - start, result


def _fluid_run(n: int, slots: int, governed: bool, seed: int):
    sim = SlotSimulator(
        system=_scaled_fleet(n, seed),
        arrivals=_arrivals(n, slots),
        seed=seed + 12,
        vectorized=True,
        overload=OverloadControl() if governed else None,
    )
    start = time.perf_counter()
    result = sim.run(FixedRatioPolicy(0.5), slots)
    return time.perf_counter() - start, result


def sweep(device_counts: list[int], slots: int, seed: int = 0) -> list[dict]:
    rows = []
    for n in device_counts:
        governed_s, rg = _event_run(n, slots, governed=True, seed=seed)
        ungoverned_s, ru = _event_run(n, slots, governed=False, seed=seed)
        identity = len(rg.tasks) == (
            len(rg.completed)
            + rg.dropped_count
            + rg.shed_count
            + rg.in_flight_count
        )
        exact = None
        if n <= SCALAR_CHECK_MAX_DEVICES:
            _, rs = _event_run(n, slots, governed=True, seed=seed, engine="scalar")
            exact = (
                len(rs.tasks) == len(rg.tasks)
                and rs.modes == rg.modes
                and all(
                    a.exit_tier == b.exit_tier
                    and a.completed == b.completed
                    and a.shed == b.shed
                    and a.dropped == b.dropped
                    for a, b in zip(rs.tasks, rg.tasks)
                )
            )
        row = {
            "path": "events",
            "devices": n,
            "tasks": len(rg.tasks),
            "shed": rg.shed_count,
            "max_mode": max(rg.modes) if rg.modes else 0,
            "governed_s": round(governed_s, 3),
            "ungoverned_s": round(ungoverned_s, 3),
            "overhead": round(governed_s / ungoverned_s, 3),
            "identity": identity,
            "exact": exact,
        }
        rows.append(row)
        print(
            f"events {n:>6} devices: {row['tasks']:>7} tasks, "
            f"governed {governed_s:7.3f}s, ungoverned {ungoverned_s:7.3f}s, "
            f"overhead {row['overhead']:5.3f}x, shed {row['shed']}, "
            f"identity={identity}, exact={exact}"
        )
        if not identity or exact is False:
            raise SystemExit(
                "overload accounting violated the SLO identity or the "
                "engines diverged — refusing to write benchmark results"
            )

        governed_s, fg = _fluid_run(n, slots, governed=True, seed=seed)
        ungoverned_s, _ = _fluid_run(n, slots, governed=False, seed=seed)
        conserved = (
            abs(fg.total_generated - (fg.total_arrivals + fg.total_shed))
            <= 1e-6 * max(fg.total_generated, 1.0)
        )
        row = {
            "path": "fluid",
            "devices": n,
            "tasks": round(fg.total_generated, 1),
            "shed": round(fg.total_shed, 1),
            "max_mode": int(fg.mode_timeline().max()),
            "governed_s": round(governed_s, 3),
            "ungoverned_s": round(ungoverned_s, 3),
            "overhead": round(governed_s / ungoverned_s, 3),
            "identity": conserved,
            "exact": None,
        }
        rows.append(row)
        print(
            f"fluid  {n:>6} devices: {row['tasks']:>7} tasks, "
            f"governed {governed_s:7.3f}s, ungoverned {ungoverned_s:7.3f}s, "
            f"overhead {row['overhead']:5.3f}x, shed {row['shed']}, "
            f"conserved={conserved}"
        )
        if not conserved:
            raise SystemExit(
                "fluid conservation violated — refusing to write "
                "benchmark results"
            )
    return rows


def check(baseline_path: Path, rows: list[dict]) -> int:
    """Soft regression gate: fail when a row's governed/ungoverned
    overhead ratio grew >30% against the committed baseline (matched on
    path × devices)."""
    baseline = json.loads(baseline_path.read_text())
    by_key = {
        (r["path"], r["devices"]): r for r in baseline.get("results", [])
    }
    failures = []
    for row in rows:
        base = by_key.get((row["path"], row["devices"]))
        if base is None or base.get("overhead") is None:
            continue
        # Sub-second rows are timing noise, not signal.
        if row["ungoverned_s"] < 0.2:
            continue
        ceiling = base["overhead"] * (1.0 + REGRESSION_TOLERANCE)
        if row["overhead"] > ceiling:
            failures.append(
                f"{row['path']} {row['devices']} devices: overhead "
                f"{row['overhead']:.3f}x > {ceiling:.3f}x "
                f"(baseline {base['overhead']:.3f}x + {REGRESSION_TOLERANCE:.0%})"
            )
    if failures:
        print("REGRESSION: " + "; ".join(failures))
        return 1
    print("overhead ratios within tolerance of the committed baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--devices",
        type=int,
        nargs="+",
        default=list(DEFAULT_DEVICES),
        help="fleet sizes to sweep",
    )
    parser.add_argument("--slots", type=int, default=40, help="slots per run")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_overload.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare overhead ratios against this committed baseline "
        "instead of overwriting it; exit 1 on a >30%% growth",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = sweep(args.devices, args.slots, seed=args.seed)
    if args.check is not None:
        return check(args.check, rows)
    payload = {
        "benchmark": "overload_layer",
        "policy": "FixedRatioPolicy(0.5)",
        "arrivals": (
            f"canonical_flash_crowd(base={BASE_RATE}, "
            f"magnitude={CROWD_MAGNITUDE})"
        ),
        "slots": args.slots,
        "seed": args.seed,
        "results": rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# -- pytest-benchmark entry point (small configuration) -------------------------


def bench_overload_governed(benchmark):
    def run():
        elapsed, result = _event_run(100, 20, governed=True, seed=0)
        return len(result.tasks) / elapsed

    tasks_per_sec = benchmark(run)
    benchmark.extra_info["governed_tasks_per_sec_100dev"] = round(
        tasks_per_sec, 1
    )


if __name__ == "__main__":
    raise SystemExit(main())

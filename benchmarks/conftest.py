"""Benchmark-suite configuration.

Each ``bench_*`` file regenerates one of the paper's figures (or the §II
motivation numbers) and attaches the measured headline values as
``extra_info`` on the benchmark record, so ``pytest benchmarks/
--benchmark-only`` both times the harness and reports the reproduced
numbers next to the paper's.
"""

from __future__ import annotations

"""Fig. 11 — scalability with the number of connected devices.

Paper outcomes: LEIME's TCT grows ~linearly and stays lowest; its exit
selections move shallower as devices are added; the benchmarks support
fewer devices.
"""

from __future__ import annotations

from repro.experiments.fig11 import run_fig11


def bench_fig11(benchmark):
    result = benchmark.pedantic(
        run_fig11, kwargs={"num_slots": 120, "seed": 0}, rounds=1, iterations=1
    )

    for series in result.series:
        leime = series.tct["LEIME"]
        # LEIME is lowest at every population size.
        for scheme, tcts in series.tct.items():
            if scheme == "LEIME":
                continue
            assert all(l <= t * 1.05 for l, t in zip(leime, tcts)), scheme
        # Exit setting adapts: the Second-exit moves shallower as N grows.
        seconds = [sel[1] for sel in series.leime_selections]
        assert seconds[-1] < seconds[0]
        # LEIME supports at least as many devices as any benchmark under a
        # fixed TCT budget (3× its own small-N TCT).
        budget = 3 * leime[0]
        leime_supported = series.max_supported("LEIME", budget)
        for scheme in series.tct:
            assert leime_supported >= series.max_supported(scheme, budget)

        benchmark.extra_info[f"{series.model}_tct"] = {
            k: [round(x, 2) for x in v] for k, v in series.tct.items()
        }
        benchmark.extra_info[f"{series.model}_selections"] = list(
            series.leime_selections
        )

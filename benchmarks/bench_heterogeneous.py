"""Extension ablation: per-class exit settings on a mixed fleet.

Not a paper figure — DESIGN.md's extension: the paper plans one partition
against the *average* device, yet its own Fig. 2(a) shows Pi- and
Nano-optimal First-exits differing by 9+ positions.  This bench quantifies
what per-class planning recovers on a half-Pi/half-Nano fleet.
"""

from __future__ import annotations

from repro.core.exit_setting import AverageEnvironment, branch_and_bound_exit_setting
from repro.core.heterogeneous import heterogeneous_system
from repro.core.offloading import DeviceConfig, DriftPlusPenaltyPolicy, EdgeSystem
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    JETSON_NANO,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import build_model
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator


def _fleet():
    pis = [
        DeviceConfig.from_platform(
            RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 0.2, name=f"pi-{i}"
        )
        for i in range(3)
    ]
    nanos = [
        DeviceConfig.from_platform(
            JETSON_NANO, WIFI_DEVICE_EDGE, 0.6, name=f"nano-{i}"
        )
        for i in range(3)
    ]
    return tuple(pis + nanos)


def bench_per_class_vs_average_partition(benchmark):
    fleet = _fleet()
    me_dnn = MultiExitDNN(build_model("inception-v3"))
    arrivals = [PoissonArrivals(d.mean_arrivals) for d in fleet]
    policy = DriftPlusPenaltyPolicy(v=50.0)

    def run_both():
        hetero = heterogeneous_system(
            me_dnn,
            fleet,
            EDGE_I7_3770.flops,
            CLOUD_V100.flops,
            INTERNET_EDGE_CLOUD,
            edge_overhead=EDGE_I7_3770.per_task_overhead,
            cloud_overhead=CLOUD_V100.per_task_overhead,
        )
        mean_flops = sum(d.flops for d in fleet) / len(fleet)
        avg_plan = branch_and_bound_exit_setting(
            me_dnn,
            AverageEnvironment(
                device_flops=mean_flops,
                edge_flops=EDGE_I7_3770.flops / len(fleet),
                cloud_flops=CLOUD_V100.flops,
                device_edge=WIFI_DEVICE_EDGE,
                edge_cloud=INTERNET_EDGE_CLOUD,
            ),
        )
        single = EdgeSystem(
            devices=fleet,
            edge_flops=EDGE_I7_3770.flops,
            cloud_flops=CLOUD_V100.flops,
            edge_cloud=INTERNET_EDGE_CLOUD,
            partition=avg_plan.partition,
            edge_overhead=EDGE_I7_3770.per_task_overhead,
            cloud_overhead=CLOUD_V100.per_task_overhead,
        )
        hetero_result = EventSimulator(
            system=hetero, arrivals=arrivals, seed=3
        ).run(policy, 150)
        single_result = EventSimulator(
            system=single, arrivals=arrivals, seed=3
        ).run(policy, 150)
        selections = sorted(
            {p.selection.as_tuple() for p in hetero.device_partitions}
        )
        return (
            hetero_result.mean_tct,
            single_result.mean_tct,
            selections,
            avg_plan.selection.as_tuple(),
        )

    hetero_tct, single_tct, class_selections, avg_selection = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert hetero_tct <= single_tct * 1.05
    benchmark.extra_info["per_class_tct"] = round(hetero_tct, 3)
    benchmark.extra_info["single_partition_tct"] = round(single_tct, 3)
    benchmark.extra_info["per_class_selections"] = class_selections
    benchmark.extra_info["average_selection"] = avg_selection

"""Fig. 6 — ME-DNN accuracy loss across exit combinations.

Paper values: average losses of 1.62% (Inception v3), 0.55% (ResNet-34),
0.44% (SqueezeNet-1.0), 1.14% (VGG-16); ResNet-34 and SqueezeNet-1.0 show
many combinations *below zero* (overthinking).
"""

from __future__ import annotations

from repro.experiments.fig6 import run_fig6


def bench_fig6(benchmark):
    results = benchmark.pedantic(
        run_fig6,
        kwargs={"samples": 12000, "epochs": 40, "seed": 0},
        rounds=1,
        iterations=1,
    )

    for name, matrix in results.items():
        # Shape target: losses stay small (within ±3%), as in the paper.
        assert abs(matrix.mean_loss) < 0.03, name
        benchmark.extra_info[f"{name}_mean_loss_pct"] = round(
            matrix.mean_loss * 100, 2
        )
        benchmark.extra_info[f"{name}_negative_fraction"] = round(
            matrix.negative_fraction, 2
        )
    # Overthinking-prone models show negative combinations (the paper's
    # "most combinations obtain an accuracy increase" for these two).
    assert results["resnet-34"].negative_fraction > 0.1
    assert results["squeezenet-1.0"].negative_fraction > 0.3

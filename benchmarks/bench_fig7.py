"""Fig. 7 — TCT vs network conditions, LEIME vs the three benchmarks.

Paper values: mean speedups 4.4×/6.5×/18.7× (Neurosurgeon/Edgent/DDNN)
across the bandwidth sweep and 4.2×/5.7×/14.5× across the latency sweep,
with the gap widest on poor networks.
"""

from __future__ import annotations

from repro.experiments.fig7 import run_fig7


def bench_fig7(benchmark):
    result = benchmark.pedantic(
        run_fig7, kwargs={"num_slots": 150, "seed": 0}, rounds=1, iterations=1
    )

    for series, label in ((result.bandwidth, "bandwidth"), (result.latency, "latency")):
        for scheme in ("Neurosurgeon", "Edgent", "DDNN"):
            speedup = series.mean_speedup(scheme)
            assert speedup > 1.5, f"{scheme} must lose clearly ({label})"
            benchmark.extra_info[f"{label}_speedup_{scheme}"] = round(speedup, 1)

    # The gap is widest when the network is poor (2 Mbps vs 128 Mbps).
    leime = result.bandwidth.tct["LEIME"]
    ddnn = result.bandwidth.tct["DDNN"]
    assert ddnn[0] / leime[0] > ddnn[-1] / leime[-1]

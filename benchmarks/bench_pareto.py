"""Extension: the accuracy-latency frontier behind the §III-B2 threshold."""

from __future__ import annotations

from repro.experiments.pareto import run_pareto


def bench_pareto(benchmark):
    result = benchmark.pedantic(
        run_pareto,
        kwargs={"samples": 10000, "epochs": 35, "seed": 0},
        rounds=1,
        iterations=1,
    )
    points = result.points
    # Looser margins trade accuracy for latency along a monotone frontier.
    assert result.is_frontier_monotone()
    assert points[-1].expected_tct < points[0].expected_tct
    assert points[-1].accuracy_loss > points[0].accuracy_loss
    benchmark.extra_info["frontier"] = [
        {
            "margin": p.margin,
            "sigma1": round(p.sigma1, 2),
            "accuracy_loss_pct": round(p.accuracy_loss * 100, 2),
            "expected_tct_ms": round(p.expected_tct * 1e3),
        }
        for p in points
    ]

"""Fleet-scale throughput: scalar slot loop vs the vectorized engine.

Sweeps fleet sizes (10 → 5,000 devices by default) and reports how many
simulated slots per second each path sustains with the drift-plus-penalty
policy deciding every slot.  The vectorized path evaluates the whole
device × ratio-grid cost matrix in NumPy; the scalar path is the per-device
reference loop.  Results land in ``BENCH_fleet.json`` at the repo root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_fleet_scale.py
    PYTHONPATH=src python benchmarks/bench_fleet_scale.py --devices 50 --slots 20

or through the benchmark suite (small configuration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scale.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # for `tests.helpers` when run as a script
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.offloading import DriftPlusPenaltyPolicy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.simulator import SlotSimulator

from tests.helpers import random_fleet

DEFAULT_DEVICES = (10, 50, 100, 500, 1000, 5000)


def _slots_per_sec(system, num_slots: int, vectorized: bool, seed: int) -> float:
    sim = SlotSimulator(
        system=system,
        arrivals=[PoissonArrivals(d.mean_arrivals) for d in system.devices],
        seed=seed,
        vectorized=vectorized,
    )
    policy = DriftPlusPenaltyPolicy(v=50.0, vectorized=vectorized)
    start = time.perf_counter()
    sim.run(policy, num_slots)
    elapsed = time.perf_counter() - start
    return num_slots / elapsed


def sweep(
    device_counts: list[int],
    num_slots: int,
    scalar_limit: int,
    seed: int = 0,
) -> list[dict]:
    results = []
    for n in device_counts:
        system = random_fleet(seed, n, max_arrivals=1.0)
        fast = _slots_per_sec(system, num_slots, vectorized=True, seed=seed)
        entry = {
            "devices": n,
            "slots": num_slots,
            "vectorized_slots_per_sec": round(fast, 2),
        }
        if n <= scalar_limit:
            slow = _slots_per_sec(system, num_slots, vectorized=False, seed=seed)
            entry["scalar_slots_per_sec"] = round(slow, 2)
            entry["speedup"] = round(fast / slow, 2)
        else:
            entry["scalar_slots_per_sec"] = None
            entry["speedup"] = None
        results.append(entry)
        scalar = entry["scalar_slots_per_sec"]
        print(
            f"{n:>6} devices: vectorized {fast:>10.1f} slots/s"
            + (
                f", scalar {scalar:>8.1f} slots/s, speedup {entry['speedup']:.1f}x"
                if scalar is not None
                else "  (scalar skipped above --scalar-limit)"
            )
        )
    return results


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--devices",
        type=int,
        nargs="+",
        default=list(DEFAULT_DEVICES),
        help="fleet sizes to sweep",
    )
    parser.add_argument("--slots", type=int, default=20, help="slots per run")
    parser.add_argument(
        "--scalar-limit",
        type=int,
        default=1000,
        help="largest fleet the scalar reference loop is timed at",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_fleet.json",
        help="where to write the JSON results",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    results = sweep(args.devices, args.slots, args.scalar_limit, seed=args.seed)
    payload = {
        "benchmark": "fleet_scale",
        "policy": "DriftPlusPenaltyPolicy(v=50)",
        "slots": args.slots,
        "seed": args.seed,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")


# -- pytest-benchmark entry point (small configuration) -------------------------


def bench_fleet_scale_vectorized(benchmark):
    system = random_fleet(0, 200, max_arrivals=1.0)
    result = benchmark(
        lambda: _slots_per_sec(system, 10, vectorized=True, seed=0)
    )
    benchmark.extra_info["vectorized_slots_per_sec_200dev"] = round(result, 1)


if __name__ == "__main__":
    main()

"""§I/§II headline degradation factors.

Paper values: improper exit setting degrades performance 4.47× on average;
improper offloading 2.85× on average.
"""

from __future__ import annotations

from repro.experiments.motivation import (
    exit_setting_degradation,
    offloading_degradation,
)


def bench_motivation_exit_setting(benchmark):
    report = benchmark.pedantic(exit_setting_degradation, rounds=1, iterations=1)
    # Same order of magnitude as the paper's 4.47× (wrong exits hurt a lot).
    assert 2.0 < report.average < 12.0
    benchmark.extra_info["average_degradation"] = round(report.average, 2)
    benchmark.extra_info["paper_value"] = 4.47


def bench_motivation_offloading(benchmark):
    report = benchmark.pedantic(
        offloading_degradation,
        kwargs={"num_slots": 120, "seed": 0},
        rounds=1,
        iterations=1,
    )
    # A wrong fixed ratio hurts meaningfully, if less than wrong exits
    # (paper: 2.85×; our slot model yields a milder but same-direction gap).
    assert report.average > 1.1
    benchmark.extra_info["average_degradation"] = round(report.average, 2)
    benchmark.extra_info["paper_value"] = 2.85

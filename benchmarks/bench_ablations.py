"""Ablations of LEIME's own design choices (DESIGN.md's ablation list).

* Branch-and-bound vs brute force: identical optima, fewer evaluations
  (Theorem 2's O(m log m) vs O(m²)) — and actual wall-clock timings.
* Lyapunov V sweep: the Theorem 3 trade-off (delay falls in V, backlog
  grows in V).
* Decentralized balance rule vs exact per-device minimisation: near-equal
  TCT, cheaper decisions.
* KKT edge allocation vs proportional/uniform: lower Eq. 26 objective.
"""

from __future__ import annotations

from repro.core.exit_setting import (
    branch_and_bound_exit_setting,
    brute_force_exit_setting,
)
from repro.core.offloading import BalanceOffloadingPolicy, DriftPlusPenaltyPolicy
from repro.core.resource_allocation import (
    kkt_edge_allocation,
    mean_processing_time,
    proportional_allocation,
    uniform_allocation,
)
from repro.experiments.common import TestbedConfig, Scheme, run_scheme, leime_scheme
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import build_model
from repro.units import gflops


def bench_exit_search_branch_and_bound(benchmark):
    config = TestbedConfig(model="inception-v3")
    me_dnn = config.me_dnn()
    env = config.average_environment()
    result = benchmark(lambda: branch_and_bound_exit_setting(me_dnn, env))
    brute = brute_force_exit_setting(me_dnn, env)
    assert result.selection == brute.selection
    assert result.evaluations < brute.evaluations
    benchmark.extra_info["evaluations"] = result.evaluations
    benchmark.extra_info["brute_force_evaluations"] = brute.evaluations


def bench_exit_search_brute_force(benchmark):
    config = TestbedConfig(model="inception-v3")
    me_dnn = config.me_dnn()
    env = config.average_environment()
    result = benchmark(lambda: brute_force_exit_setting(me_dnn, env))
    benchmark.extra_info["evaluations"] = result.evaluations


def bench_lyapunov_v_tradeoff(benchmark):
    """Theorem 3: larger V → lower (or equal) delay, larger queues."""
    config = TestbedConfig(model="inception-v3", num_devices=4, arrival_rate=1.2)

    def sweep():
        rows = {}
        for v in (1.0, 50.0, 2000.0):
            scheme = Scheme(
                name=f"V={v}",
                partition=leime_scheme(config).partition,
                policy=DriftPlusPenaltyPolicy(v=v),
            )
            result = run_scheme(config, scheme, num_slots=150, seed=0)
            rows[v] = (result.mean_tct, result.max_backlog)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tcts = [rows[v][0] for v in sorted(rows)]
    assert tcts[-1] <= tcts[0] * 1.05  # delay does not grow with V
    benchmark.extra_info["v_to_tct_backlog"] = {
        str(v): (round(t, 3), round(b, 1)) for v, (t, b) in rows.items()
    }


def bench_balance_vs_exact_policy(benchmark):
    """The paper's closed balance rule tracks the exact per-slot optimum."""
    config = TestbedConfig(model="inception-v3", num_devices=4, arrival_rate=1.2)
    partition = leime_scheme(config).partition

    def run_both():
        exact = run_scheme(
            config,
            Scheme("exact", partition, DriftPlusPenaltyPolicy(v=50.0)),
            num_slots=150,
            seed=0,
        )
        balance = run_scheme(
            config,
            Scheme("balance", partition, BalanceOffloadingPolicy()),
            num_slots=150,
            seed=0,
        )
        return exact.mean_tct, balance.mean_tct

    exact_tct, balance_tct = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert balance_tct <= exact_tct * 1.5
    benchmark.extra_info["exact_tct"] = round(exact_tct, 3)
    benchmark.extra_info["balance_tct"] = round(balance_tct, 3)


def bench_kkt_allocation(benchmark):
    """KKT shares beat the naive allocations on a heterogeneous population."""
    device_flops = [gflops(3.6)] * 3 + [gflops(29.5)] * 2
    rates = [2.0, 1.0, 3.0, 0.5, 0.2]
    edge = gflops(60)
    work = 2e9

    shares = benchmark(lambda: kkt_edge_allocation(device_flops, rates, edge))
    kkt_obj = mean_processing_time(shares, device_flops, rates, edge, work)
    for baseline in (proportional_allocation, uniform_allocation):
        other = mean_processing_time(
            baseline(device_flops, rates, edge), device_flops, rates, edge, work
        )
        assert kkt_obj <= other + 1e-12
    benchmark.extra_info["kkt_objective"] = round(kkt_obj, 4)

"""Sharded-coordinator throughput: federated vs single-edge fluid path.

Times the federated vectorized slot path — E per-edge shards stepped
through their own :class:`~repro.core.vectorized.VectorizedSlotEngine`
under the thin coordinator — against the single-edge vectorized
simulator over the same device count, up to fleets of 10,000+ devices.
The machine-independent gate metric is the *sharding overhead ratio*
(federated time over single-edge time at equal N): the coordinator's
gather/scatter and per-edge bookkeeping should stay a small constant
factor, not grow with fleet size.

Before timing anything, an E=1 conformance gate re-checks the package's
core promise on a small fleet (federated records == single-edge records,
byte-for-byte) and a federated run re-checks the per-edge SLO identity;
a violation refuses to write results.

Run directly::

    PYTHONPATH=src python benchmarks/bench_federation.py
    PYTHONPATH=src python benchmarks/bench_federation.py --devices 2000 --edges 4

Soft regression gate (CI): compare a fresh sweep against the committed
baseline and fail when any row's sharding overhead grew by more than
30%::

    PYTHONPATH=src python benchmarks/bench_federation.py --check BENCH_federation.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # for `tests.helpers` when run as a script
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.offloading import FixedRatioPolicy
from repro.federation import (
    FederatedSlotSimulator,
    build_assignment_plan,
    federated_fluid_summary,
    random_federation,
    single_edge_topology,
)
from repro.sim.arrivals import ConstantArrivals
from repro.sim.simulator import SlotSimulator

from tests.helpers import inception_partition, random_fleet, static_home_plan

#: (fleet size, federation width) sweep; the second row is the
#: acceptance-criteria 10k-device sharded run.
DEFAULT_SWEEP = ((1000, 4), (10000, 8))
ARRIVAL_RATE = 0.5
#: Allowed relative growth in a row's sharding overhead before --check fails.
REGRESSION_TOLERANCE = 0.30


def _conformance_gate(seed: int = 0) -> bool:
    """E=1 federated fluid records must equal the single-edge records."""
    system = random_fleet(seed + 77, 4)
    arrivals = [ConstantArrivals(ARRIVAL_RATE)] * 4
    single = SlotSimulator(
        system=system, arrivals=arrivals, seed=seed, vectorized=True
    ).run(FixedRatioPolicy(0.5), 12)
    topology = single_edge_topology(system)
    federated = FederatedSlotSimulator(
        topology=topology,
        arrivals=arrivals,
        plan=static_home_plan(topology, 12),
        seed=seed,
        vectorized=True,
    ).run(FixedRatioPolicy(0.5), 12)
    return single.records == federated.global_result.records


def _sharded_run(n: int, edges: int, slots: int, seed: int):
    topology = random_federation(
        seed=seed,
        num_edges=edges,
        num_devices=n,
        partition=inception_partition(),
    )
    plan = build_assignment_plan(topology, slots, seed=seed)
    sim = FederatedSlotSimulator(
        topology=topology,
        arrivals=[ConstantArrivals(ARRIVAL_RATE)] * n,
        plan=plan,
        seed=seed,
        vectorized=True,
    )
    start = time.perf_counter()
    result = sim.run(FixedRatioPolicy(0.5), slots)
    return time.perf_counter() - start, result


def _single_run(n: int, slots: int, seed: int):
    system = random_fleet(seed + 31, n)
    sim = SlotSimulator(
        system=system,
        arrivals=[ConstantArrivals(ARRIVAL_RATE)] * n,
        seed=seed,
        vectorized=True,
    )
    start = time.perf_counter()
    result = sim.run(FixedRatioPolicy(0.5), slots)
    return time.perf_counter() - start, result


def sweep(configs, slots: int, seed: int = 0) -> list[dict]:
    if not _conformance_gate(seed):
        raise SystemExit(
            "E=1 conformance gate failed — the federated coordinator "
            "diverged from the single-edge path; refusing to write results"
        )
    print("E=1 conformance gate: byte-identical")
    rows = []
    for n, edges in configs:
        sharded_s, result = _sharded_run(n, edges, slots, seed)
        single_s, _ = _single_run(n, slots, seed)
        summary = federated_fluid_summary(result)
        conserved = summary["identity_gap"] < 1e-6 * max(
            result.global_result.total_generated, 1.0
        )
        row = {
            "path": "fluid-sharded",
            "devices": n,
            "edges": edges,
            "slots": slots,
            "sharded_s": round(sharded_s, 3),
            "single_s": round(single_s, 3),
            "overhead": round(sharded_s / single_s, 3),
            "device_slots_per_s": round(n * slots / sharded_s, 1),
            "conserved": conserved,
        }
        rows.append(row)
        print(
            f"fluid {n:>6} devices x {edges} edges: sharded {sharded_s:7.3f}s,"
            f" single {single_s:7.3f}s, overhead {row['overhead']:5.3f}x, "
            f"{row['device_slots_per_s']:>10.1f} device-slots/s, "
            f"conserved={conserved}"
        )
        if not conserved:
            raise SystemExit(
                "federated fluid accounting violated conservation — "
                "refusing to write benchmark results"
            )
    return rows


def check(baseline_path: Path, rows: list[dict]) -> int:
    """Soft regression gate: fail when a row's sharding overhead grew
    >30% against the committed baseline (matched on devices × edges)."""
    baseline = json.loads(baseline_path.read_text())
    by_key = {
        (r["devices"], r["edges"]): r for r in baseline.get("results", [])
    }
    failures = []
    for row in rows:
        base = by_key.get((row["devices"], row["edges"]))
        if base is None or base.get("overhead") is None:
            continue
        # Sub-second rows are timing noise, not signal.
        if row["single_s"] < 0.2:
            continue
        ceiling = base["overhead"] * (1.0 + REGRESSION_TOLERANCE)
        if row["overhead"] > ceiling:
            failures.append(
                f"{row['devices']}x{row['edges']}: overhead "
                f"{row['overhead']:.3f}x > {ceiling:.3f}x "
                f"(baseline {base['overhead']:.3f}x + {REGRESSION_TOLERANCE:.0%})"
            )
    if failures:
        print("REGRESSION: " + "; ".join(failures))
        return 1
    print("sharding overheads within tolerance of the committed baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--devices",
        type=int,
        default=None,
        help="single fleet size to run instead of the default sweep",
    )
    parser.add_argument(
        "--edges",
        type=int,
        default=4,
        help="federation width when --devices is given",
    )
    parser.add_argument("--slots", type=int, default=10, help="slots per run")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_federation.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare sharding overheads against this committed baseline "
        "instead of overwriting it; exit 1 on a >30%% growth",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    configs = (
        [(args.devices, args.edges)]
        if args.devices is not None
        else list(DEFAULT_SWEEP)
    )
    rows = sweep(configs, args.slots, seed=args.seed)
    if args.check is not None:
        return check(args.check, rows)
    payload = {
        "benchmark": "federation_sharded_coordinator",
        "policy": "FixedRatioPolicy(0.5)",
        "arrivals": f"ConstantArrivals({ARRIVAL_RATE})",
        "slots": args.slots,
        "seed": args.seed,
        "results": rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# -- pytest-benchmark entry point (small configuration) -------------------------


def bench_federation_sharded(benchmark):
    def run():
        elapsed, result = _sharded_run(200, 4, 10, seed=0)
        return 200 * 10 / elapsed

    device_slots_per_sec = benchmark(run)
    benchmark.extra_info["sharded_device_slots_per_sec_200dev"] = round(
        device_slots_per_sec, 1
    )


if __name__ == "__main__":
    raise SystemExit(main())

"""Tournament bracket benchmark: the committed league as a regression gate.

Runs a fixed mid-size bracket — five policies (the paper's DPP, the
Balance rule, the probabilistic vector policy, the UCB exit bandit, and
the device-only floor) across four scenario axes on both event engines —
and records per-engine wall time plus the full deterministic artifact
(cells + league).

Unlike the throughput benches, the headline gate here is *exactness*,
not speed: every cell metric and the league table are seeded simulation
outputs, identical on any machine, so ``--check`` recomputes the bracket
and fails on ANY difference from the committed cells or league — a
byte-level seed-reproducibility gate.  Engine wall times ride along as
informational context and are never gated.

Run directly::

    PYTHONPATH=src python benchmarks/bench_tournament.py
    PYTHONPATH=src python benchmarks/bench_tournament.py --check BENCH_tournament.json

A markdown league report lands next to the JSON (same stem, ``.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.tournament import (
    TournamentSpec,
    league_markdown,
    league_table,
    run_tournament,
)

#: The committed bracket: ≥5 policies × all four scenario axes.
BENCH_SPEC = TournamentSpec(
    policies=("leime", "balance", "probabilistic", "bandit", "device-only"),
    scenarios=("stationary", "diurnal-wild", "edge-outage", "flash-crowd"),
    num_slots=60,
    num_devices=4,
    seed=0,
)


def run_bracket() -> dict:
    """The bracket artifact plus per-engine wall seconds."""
    elapsed: dict[str, float] = {}
    cells: dict[str, dict] = {}
    for engine in BENCH_SPEC.engines:
        single = TournamentSpec(
            policies=BENCH_SPEC.policies,
            scenarios=BENCH_SPEC.scenarios,
            engines=(engine,),
            num_slots=BENCH_SPEC.num_slots,
            num_devices=BENCH_SPEC.num_devices,
            seed=BENCH_SPEC.seed,
        )
        start = time.perf_counter()
        part = run_tournament(single)
        elapsed[engine] = round(time.perf_counter() - start, 3)
        cells.update(part["cells"])
    return {
        "benchmark": "tournament",
        "fingerprint": BENCH_SPEC.fingerprint(),
        "spec": asdict(BENCH_SPEC),
        "elapsed_s": elapsed,
        "cells": cells,
        "league": league_table(BENCH_SPEC, cells),
    }


def check(baseline_path: Path, payload: dict) -> int:
    """Exactness gate: the recomputed bracket must reproduce the
    committed cells and league byte-for-byte (timings excluded)."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    if baseline.get("fingerprint") != payload["fingerprint"]:
        failures.append(
            f"spec fingerprint {payload['fingerprint']} != committed "
            f"{baseline.get('fingerprint')} (bracket definition changed; "
            "refresh the baseline deliberately)"
        )
    else:
        for section in ("cells", "league"):
            if baseline.get(section) != payload[section]:
                failures.append(
                    f"{section} diverged from the committed baseline — "
                    "the seeded bracket is no longer reproducible"
                )
    if failures:
        print("REGRESSION: " + "; ".join(failures))
        return 1
    print("bracket reproduces the committed cells and league exactly")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_tournament.json",
        help="where to write the JSON results (a .md league report lands "
        "next to it)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="recompute the bracket and fail unless cells + league match "
        "this committed baseline exactly",
    )
    args = parser.parse_args(argv)

    payload = run_bracket()
    print(
        "engines: "
        + ", ".join(f"{k} {v:.3f}s" for k, v in payload["elapsed_s"].items())
    )
    if args.check is not None:
        return check(args.check, payload)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report = args.output.with_suffix(".md")
    report.write_text(
        league_markdown(
            {
                "fingerprint": payload["fingerprint"],
                "spec": payload["spec"],
                "cells": payload["cells"],
                "league": payload["league"],
            }
        )
    )
    print(f"wrote {args.output} and {report}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Chaos replay: the canonical outage plan through every execution path.

Generates the seeded canonical outage plan (background uplink drops,
corruption, stragglers, plus one pinned edge outage), then:

* replays it through the slot simulator on both paths (scalar vs.
  vectorized) with the resilient LEIME policy and asserts the
  trajectories are byte-identical;
* replays it through the event simulator with and without recovery and
  records the SLO contrast (completion/drops/retries/deadline misses);
* times both replays.  Results land in ``BENCH_faults.json`` at the repo
  root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_faults.py
    PYTHONPATH=src python benchmarks/bench_faults.py --slots 80 --devices 8

or through the benchmark suite (small configuration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.offloading import DriftPlusPenaltyPolicy
from repro.experiments.common import TestbedConfig, leime_scheme
from repro.resilience import (
    FaultyEnvironment,
    RecoveryPolicy,
    ResilientPolicy,
    canonical_outage_plan,
    slo_summary,
    time_to_recovery,
)
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator

#: Deadline used for the reported miss rates (seconds of TCT).
DEADLINE_S = 10.0


def _identical(scalar, fast) -> bool:
    return all(
        a.queue_local == b.queue_local
        and a.queue_edge == b.queue_edge
        and a.total_time == b.total_time
        and a.ratios == b.ratios
        for a, b in zip(scalar.records, fast.records)
    )


def run(
    num_slots: int,
    num_devices: int,
    arrival_rate: float,
    seed: int,
    skip_scalar: bool = False,
) -> dict:
    config = TestbedConfig(
        model="inception-v3",
        num_devices=num_devices,
        arrival_rate=arrival_rate,
    )
    system = config.system(leime_scheme(config).partition)
    plan = canonical_outage_plan(
        num_slots=num_slots, num_devices=num_devices, seed=seed
    )

    # --- Fluid level: resilient LEIME through both slot-simulator paths.
    def fluid(vectorized: bool):
        policy = ResilientPolicy(
            DriftPlusPenaltyPolicy(v=config.v), plan, RecoveryPolicy.default()
        )
        return SlotSimulator(
            system=system,
            arrivals=config.arrival_processes(),
            environment=FaultyEnvironment(plan),
            seed=seed,
            vectorized=vectorized,
        ).run(policy, num_slots)

    start = time.perf_counter()
    fast = fluid(vectorized=True)
    fast_elapsed = time.perf_counter() - start
    fluid_entry = {
        "mean_tct_s": round(fast.mean_tct, 6),
        "max_backlog": round(fast.max_backlog, 3),
        "recovery_slots": time_to_recovery(
            fast, int(plan.meta["outage_start"]), int(plan.meta["outage_stop"])
        ),
        "stable": fast.is_stable(),
        "vectorized_slots_per_sec": round(num_slots / fast_elapsed, 2),
    }
    if not skip_scalar:
        start = time.perf_counter()
        scalar = fluid(vectorized=False)
        scalar_elapsed = time.perf_counter() - start
        fluid_entry["scalar_slots_per_sec"] = round(num_slots / scalar_elapsed, 2)
        fluid_entry["paths_identical"] = _identical(scalar, fast)
        if not fluid_entry["paths_identical"]:
            raise AssertionError(
                "scalar and vectorized fault replays diverged"
            )
    print(
        f"fluid          TCT {fluid_entry['mean_tct_s']:.3f} s, "
        f"max backlog {fluid_entry['max_backlog']:.1f}, "
        f"{fluid_entry['vectorized_slots_per_sec']:.0f} slots/s vectorized"
        + (
            ", paths byte-identical"
            if fluid_entry.get("paths_identical")
            else ""
        )
    )

    # --- Task level: recovery vs. none through the event simulator.
    task_entries = []
    for name, recovery in (
        ("recovery", RecoveryPolicy.default()),
        ("no-recovery", RecoveryPolicy.none()),
    ):
        start = time.perf_counter()
        result = EventSimulator(
            system=system,
            arrivals=config.arrival_processes(),
            seed=seed,
            faults=plan,
            recovery=recovery,
        ).run(
            DriftPlusPenaltyPolicy(v=config.v),
            num_slots,
            drain_limit_factor=100.0,
        )
        elapsed = time.perf_counter() - start
        entry = {"scheme": name, "elapsed_s": round(elapsed, 3)}
        entry.update(
            {
                key: (round(value, 6) if isinstance(value, float) else value)
                for key, value in slo_summary(result, deadline=DEADLINE_S).items()
            }
        )
        task_entries.append(entry)
        print(
            f"{name:<14} completion {entry['completion_rate']:.3f}, "
            f"dropped {entry['dropped']}, retries {entry['total_retries']}, "
            f"miss@{DEADLINE_S:.0f}s {entry['deadline_miss_rate']:.1%}"
        )

    return {
        "benchmark": "faults",
        "slots": num_slots,
        "devices": num_devices,
        "arrival_rate": arrival_rate,
        "seed": seed,
        "deadline_s": DEADLINE_S,
        "plan": plan.describe(),
        "fluid": fluid_entry,
        "results": task_entries,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slots", type=int, default=160)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--arrival-rate", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-scalar",
        action="store_true",
        help="time only the vectorized path (skips the identity check)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_faults.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    payload = run(
        args.slots,
        args.devices,
        args.arrival_rate,
        args.seed,
        skip_scalar=args.skip_scalar,
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")


# -- pytest-benchmark entry point (small configuration) -------------------------


def bench_fault_replay(benchmark):
    payload = benchmark(lambda: run(40, 4, 0.3, seed=0, skip_scalar=True))
    recovery = payload["results"][0]
    benchmark.extra_info["completion_rate"] = recovery["completion_rate"]
    benchmark.extra_info["total_retries"] = recovery["total_retries"]
    benchmark.extra_info["fluid_slots_per_sec"] = payload["fluid"][
        "vectorized_slots_per_sec"
    ]


if __name__ == "__main__":
    main()

"""Drive the live threaded LEIME prototype — tasks on real worker threads.

The other examples use the simulators; this one runs the actual runtime
(:mod:`repro.runtime`): device/edge/cloud worker threads with real queues,
scaled wall-clock execution, and a controller that re-runs the offloading
policy every slot against *live* queue occupancies — a miniature of the
paper's §IV prototype (Raspberry Pis + Docker-sliced edge + cloud).

Run:  python examples/live_runtime_demo.py   (~20 s wall clock)
"""

from __future__ import annotations

from repro.core.leime import LeimeController
from repro.core.offloading import DeviceConfig, FixedRatioPolicy
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models import MultiExitDNN, build_model
from repro.runtime import LeimeRuntime
from repro.sim.arrivals import PoissonArrivals
from repro.units import to_ms

NUM_SLOTS = 60
SPEEDUP = 25.0  # 60 virtual seconds in ~2.4 s wall per run


def run_policy(controller: LeimeController, label: str, policy) -> None:
    runtime = LeimeRuntime(
        controller.system(), policy, speedup=SPEEDUP, seed=7
    )
    try:
        report = runtime.run(
            [PoissonArrivals(d.mean_arrivals) for d in controller.devices],
            num_slots=NUM_SLOTS,
            drain_timeout=60.0,
        )
    finally:
        runtime.shutdown()
    tier1, tier2, tier3 = report.exit_fractions()
    print(
        f"  {label:<22} {len(report.completed):>4} tasks  "
        f"mean {to_ms(report.mean_tct):6.0f} ms  "
        f"exits {tier1:.0%}/{tier2:.0%}/{tier3:.0%}  "
        f"completed {report.completion_rate:.0%}"
    )


def main() -> None:
    devices = [
        DeviceConfig.from_platform(
            RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 0.5, name=f"pi-{i}"
        )
        for i in range(3)
    ]
    controller = LeimeController(
        me_dnn=MultiExitDNN(build_model("inception-v3")),
        devices=devices,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
    )
    plan = controller.plan()
    print(
        f"live LEIME prototype: 3 Pi worker threads, exits "
        f"{plan.selection.as_tuple()}, {NUM_SLOTS} slots at {SPEEDUP:.0f}x "
        f"wall speed\n"
    )
    run_policy(controller, "LEIME (online)", controller.policy)
    run_policy(controller, "device-only (static)", FixedRatioPolicy(0.0))
    run_policy(controller, "edge-only (static)", FixedRatioPolicy(1.0))
    print(
        "\nEach row is a real threaded execution: jobs crossed worker "
        "queues, links serialised transfers, and the controller replanned "
        "every virtual second from live backlogs."
    )


if __name__ == "__main__":
    main()

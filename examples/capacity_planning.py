"""Capacity planning: how many cameras can one edge server carry?

An operator question built on the Fig. 11 machinery: given a latency SLO,
sweep the device population and find the largest fleet each scheme
supports, watching how LEIME's exit setting adapts (shallower Second-exit
as the edge slice per device shrinks — the §IV Test Case 5 observation).

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.experiments.common import (
    SCHEME_BUILDERS,
    TestbedConfig,
    compare_schemes,
    format_rows,
)
from repro.units import to_ms

#: Latency SLO for a "supported" deployment.
SLO_SECONDS = 1.5

#: Candidate fleet sizes.
FLEET_SIZES = (2, 4, 8, 16, 24)


def main() -> None:
    print(
        f"Sweeping fleet sizes {FLEET_SIZES} for ME-Inception v3 "
        f"(SLO: {to_ms(SLO_SECONDS):.0f} ms mean TCT)\n"
    )
    tct: dict[str, list[float]] = {name: [] for name in SCHEME_BUILDERS}
    selections = []
    for size in FLEET_SIZES:
        config = TestbedConfig(
            model="inception-v3", num_devices=size, arrival_rate=0.1
        )
        results = compare_schemes(config, tuple(SCHEME_BUILDERS), num_slots=150)
        for name in SCHEME_BUILDERS:
            tct[name].append(results[name].mean_tct)
        selections.append(
            SCHEME_BUILDERS["LEIME"](config).partition.selection.as_tuple()
        )

    header = ("scheme",) + tuple(f"N={s}" for s in FLEET_SIZES) + ("max fleet",)
    rows = []
    for name, series in tct.items():
        supported = 0
        for size, value in zip(FLEET_SIZES, series):
            if value <= SLO_SECONDS:
                supported = size
        rows.append(
            (name,)
            + tuple(f"{v:.2f}s" for v in series)
            + (str(supported) if supported else "none",)
        )
    print(format_rows(header, rows))

    print("\nLEIME's exit setting adapts to the fleet size:")
    for size, selection in zip(FLEET_SIZES, selections):
        print(f"  N={size:>2}: exits {selection}")
    print(
        "\nThe Second-exit moves shallower as devices are added — each "
        "device's edge slice shrinks, so LEIME ships deep work to the "
        "cloud instead of queueing it on the edge (Fig. 2(b)/Fig. 11)."
    )


if __name__ == "__main__":
    main()

"""Train the multi-exit *CNN* substrate and inspect the receptive-field
mechanism directly.

Where ``train_multi_exit_classifier.py`` uses the chunked MLP, this
example uses the convolutional substrate — the closest analogue of the
paper's PyTorch ME-DNNs: easy classes live in a local patch any early exit
can see, hard classes live in a global template only deep receptive
fields integrate.  After training, the per-exit accuracy split between
easy and hard samples makes the mechanism visible, and the calibrated
thresholds show tasks sorting themselves by depth — the behaviour the
whole LEIME system is built on.

Run:  python examples/train_multi_exit_cnn.py   (~1-2 min of numpy conv)
"""

from __future__ import annotations

import numpy as np

from repro.data import SyntheticPatchImageDataset
from repro.nn import MultiExitCNN, calibrate_thresholds
from repro.nn.training import SGD
from repro.report import sparkline


def main() -> None:
    generator = SyntheticPatchImageDataset(
        size=10,
        channels=3,
        num_classes=6,
        hard_fraction=0.5,
        noise=0.45,
        distractor_fraction=0.2,
    )
    train = generator.sample(2500, seed=1)
    val = generator.sample(800, seed=2)
    test = generator.sample(800, seed=3)

    net = MultiExitCNN(
        in_channels=3, num_classes=6, num_stages=5, width=12,
        downsample_at=3, seed=0,
    )
    optimiser = SGD(learning_rate=0.05, momentum=0.9)
    rng = np.random.default_rng(0)
    print("training a 5-stage multi-exit CNN (numpy im2col)...")
    for epoch in range(10):
        order = rng.permutation(len(train))
        total = 0.0
        for start in range(0, len(train), 64):
            idx = order[start : start + 64]
            total += net.train_batch(train.x[idx], train.y[idx])
            optimiser.step(net.params(), net.grads())
        print(f"  epoch {epoch + 1:>2}: loss {total:8.1f}")

    def per_exit_accuracy(dataset):
        logits = net.forward_all(dataset.x, train=False)
        return [float((l.argmax(axis=1) == dataset.y).mean()) for l in logits]

    easy = test.subset(np.where(~test.hard)[0])
    hard = test.subset(np.where(test.hard)[0])
    acc_all = per_exit_accuracy(test)
    acc_easy = per_exit_accuracy(easy)
    acc_hard = per_exit_accuracy(hard)
    print("\nper-exit accuracy (exit 1 → final):")
    print(f"  all  {sparkline(acc_all)}  " + " ".join(f"{a:.2f}" for a in acc_all))
    print(f"  easy {sparkline(acc_easy)}  " + " ".join(f"{a:.2f}" for a in acc_easy))
    print(f"  hard {sparkline(acc_hard)}  " + " ".join(f"{a:.2f}" for a in acc_hard))
    print(
        "  → local-patch (easy) classes are readable early; global-template "
        "(hard) classes need depth."
    )

    calibration = calibrate_thresholds(net, val, accuracy_margin=0.02)
    print("\ncalibrated exit rates σ (cumulative):")
    rates = calibration.exit_rates
    print(f"  {sparkline(rates)}  " + " ".join(f"{r:.2f}" for r in rates))
    print(
        f"reference accuracy {calibration.reference_accuracy:.2%}; a "
        f"LEIME deployment would feed these σ into the exit-setting search "
        f"exactly as in examples/train_multi_exit_classifier.py."
    )


if __name__ == "__main__":
    main()

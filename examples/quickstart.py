"""Quickstart: deploy a multi-exit Inception v3 across device/edge/cloud.

Walks the full LEIME pipeline on a small testbed (two Raspberry Pis and a
Jetson Nano behind an i7 edge server and a V100 cloud):

1. build the analytical model profile and its candidate exits;
2. run the branch-and-bound exit setting (§III-C) and inspect the chosen
   partition;
3. allocate edge shares (Appendix B) and run the online offloading policy
   (§III-D) in the slot simulator;
4. compare against device-only and edge-only static policies.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.leime import LeimeController
from repro.core.offloading import DeviceConfig, FixedRatioPolicy
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    JETSON_NANO,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models import MultiExitDNN, ParametricExitCurve, build_model
from repro.sim import PoissonArrivals, SlotSimulator, summarize
from repro.units import to_ms


def main() -> None:
    # 1. The model substrate: per-layer FLOPs, activation sizes, exit heads.
    profile = build_model("inception-v3")
    print(profile.describe())
    me_dnn = MultiExitDNN(profile, ParametricExitCurve.from_complexity(0.5))

    # 2-3. A LEIME deployment over a small heterogeneous device population.
    devices = [
        DeviceConfig.from_platform(RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 0.4, name="pi-0"),
        DeviceConfig.from_platform(RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 0.4, name="pi-1"),
        DeviceConfig.from_platform(JETSON_NANO, WIFI_DEVICE_EDGE, 0.8, name="nano-0"),
    ]
    controller = LeimeController(
        me_dnn=me_dnn,
        devices=devices,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
    )
    plan = controller.plan()
    partition = plan.partition
    print(f"\nExit setting: {plan.selection.as_tuple()}  "
          f"(expected per-task latency {to_ms(plan.cost):.0f} ms, "
          f"{plan.evaluations} cost evaluations)")
    print(f"Blocks (GFLOPs): "
          f"{[round(f / 1e9, 2) for f in partition.block_flops]}  "
          f"transfers (bytes): {partition.transfer_bytes}  "
          f"exit rates: {[round(s, 2) for s in partition.sigma]}")
    print(f"Edge shares (Appendix B): "
          f"{[round(p, 3) for p in controller.edge_shares()]}")

    # 4. Simulate LEIME's online policy against static baselines.
    system = controller.system()
    arrivals = [PoissonArrivals(d.mean_arrivals) for d in devices]
    simulator = SlotSimulator(system=system, arrivals=arrivals, seed=42)
    results = simulator.compare(
        [
            ("LEIME", controller.policy),
            ("device-only", FixedRatioPolicy(0.0)),
            ("edge-only", FixedRatioPolicy(1.0)),
        ],
        num_slots=300,
    )
    print("\n" + summarize(results))


if __name__ == "__main__":
    main()

"""Heterogeneous fleets and data drift: the two LEIME extensions.

Part 1 — **per-class exit settings** (:mod:`repro.core.heterogeneous`):
a mixed Pi/Nano fleet gets one exit triple per device class instead of the
paper's single average-device partition, and the event simulator shows the
latency recovered.

Part 2 — **adaptive re-planning** (:mod:`repro.core.adaptation`):
the input distribution drifts from hard to easy at "night"; the adaptive
controller watches where tasks actually exit, infers the new data
complexity, and re-places the exits — the offline planner keeps serving
the stale ones.

Run:  python examples/heterogeneous_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import AdaptiveExitController
from repro.core.exit_setting import (
    AverageEnvironment,
    branch_and_bound_exit_setting,
)
from repro.core.heterogeneous import heterogeneous_system, plan_per_class
from repro.core.offloading import DeviceConfig, DriftPlusPenaltyPolicy, EdgeSystem
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    JETSON_NANO,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models import MultiExitDNN, ParametricExitCurve, build_model
from repro.sim import EventSimulator, PoissonArrivals
from repro.units import to_ms


def part1_per_class_planning() -> None:
    print("=" * 68)
    print("Part 1 — per-class exit settings on a mixed Pi/Nano fleet")
    print("=" * 68)
    fleet = tuple(
        [
            DeviceConfig.from_platform(
                RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 0.2, name=f"pi-{i}"
            )
            for i in range(3)
        ]
        + [
            DeviceConfig.from_platform(
                JETSON_NANO, WIFI_DEVICE_EDGE, 0.6, name=f"nano-{i}"
            )
            for i in range(3)
        ]
    )
    me_dnn = MultiExitDNN(build_model("inception-v3"))

    classes = plan_per_class(
        me_dnn, fleet, EDGE_I7_3770.flops, CLOUD_V100.flops, INTERNET_EDGE_CLOUD
    )
    for device_class in classes:
        flops_g = device_class.key[0] / 1e9
        print(
            f"  class @ {flops_g:5.1f} GFLOPS x{len(device_class.indices)}: "
            f"exits {device_class.plan.selection.as_tuple()} "
            f"({to_ms(device_class.plan.cost):.0f} ms/task planned)"
        )

    hetero = heterogeneous_system(
        me_dnn,
        fleet,
        EDGE_I7_3770.flops,
        CLOUD_V100.flops,
        INTERNET_EDGE_CLOUD,
        edge_overhead=EDGE_I7_3770.per_task_overhead,
        cloud_overhead=CLOUD_V100.per_task_overhead,
    )
    mean_flops = sum(d.flops for d in fleet) / len(fleet)
    average_plan = branch_and_bound_exit_setting(
        me_dnn,
        AverageEnvironment(
            device_flops=mean_flops,
            edge_flops=EDGE_I7_3770.flops / len(fleet),
            cloud_flops=CLOUD_V100.flops,
            device_edge=WIFI_DEVICE_EDGE,
            edge_cloud=INTERNET_EDGE_CLOUD,
        ),
    )
    single = EdgeSystem(
        devices=fleet,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=average_plan.partition,
        edge_overhead=EDGE_I7_3770.per_task_overhead,
        cloud_overhead=CLOUD_V100.per_task_overhead,
    )

    arrivals = [PoissonArrivals(d.mean_arrivals) for d in fleet]
    policy = DriftPlusPenaltyPolicy(v=50.0)
    for label, system in (("per-class", hetero), ("paper (average)", single)):
        result = EventSimulator(system=system, arrivals=arrivals, seed=11).run(
            policy, 200
        )
        per_device = result.per_device_mean_tct(len(fleet))
        print(
            f"  {label:<16} mean TCT {to_ms(result.mean_tct):6.0f} ms   "
            f"Pi devices {to_ms(float(np.mean(per_device[:3]))):6.0f} ms   "
            f"Nanos {to_ms(float(np.mean(per_device[3:]))):6.0f} ms   "
            f"p95 {to_ms(result.tct_percentile(95)):6.0f} ms"
        )


def part2_adaptive_replanning() -> None:
    print()
    print("=" * 68)
    print("Part 2 — adaptive re-planning under data-complexity drift")
    print("=" * 68)
    profile = build_model("inception-v3")
    environment = AverageEnvironment.from_platforms(
        RASPBERRY_PI_3B,
        EDGE_I7_3770,
        CLOUD_V100,
        WIFI_DEVICE_EDGE,
        INTERNET_EDGE_CLOUD,
        edge_share=0.25,
    )
    controller = AdaptiveExitController(
        profile, environment, drift_threshold=0.08
    )
    print(f"  day plan (complexity prior a=1.0): "
          f"{controller.plan.selection.as_tuple()}, "
          f"{to_ms(controller.plan.cost):.0f} ms/task")

    # Night falls: inputs become easy (a=0.3) — most tasks could exit early.
    night = MultiExitDNN(profile, ParametricExitCurve(a=0.3))
    rng = np.random.default_rng(3)
    for batch in range(1, 100):
        selection = controller.plan.selection
        sigma1 = night.exit_rate(selection.first)
        sigma2 = night.exit_rate(selection.second)
        draws = rng.random(200)
        first = int((draws < sigma1).sum())
        second = int(((draws >= sigma1) & (draws < sigma2)).sum())
        controller.observe(first, second, 200)
        observed_sigma = controller.estimated_sigma
        planned_sigma1 = controller.plan.partition.sigma1
        new_plan = controller.maybe_replan()
        if new_plan is not None:
            print(
                f"  batch {batch}: drift detected at exits "
                f"{selection.as_tuple()} — observed σ₁ "
                f"{observed_sigma[0]:.2f} vs planned {planned_sigma1:.2f}"
            )
            print(
                f"  night plan: {new_plan.selection.as_tuple()}, "
                f"{to_ms(new_plan.cost):.0f} ms/task"
            )
            break
    oracle = branch_and_bound_exit_setting(night, environment)
    print(
        f"  oracle (true night complexity): {oracle.selection.as_tuple()}, "
        f"{to_ms(oracle.cost):.0f} ms/task"
    )


def main() -> None:
    part1_per_class_planning()
    part2_adaptive_replanning()


if __name__ == "__main__":
    main()

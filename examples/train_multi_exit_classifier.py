"""Model-to-deployment pipeline: train, calibrate, then place exits.

The paper's workflow end to end, on the numpy substrate:

1. **Train** a multi-exit classifier (shared trunk, one exit head per
   stage) on the synthetic easy/hard mixture — the CIFAR-10 stand-in.
2. **Calibrate** per-exit confidence thresholds so tasks exit early only
   when that costs no accuracy (§III-B2), and measure the resulting exit
   rates σ and the accuracy of a few exit combinations (the Fig. 6
   quantities, including the "overthinking" effect).
3. **Deploy**: feed the *measured* exit rates into the exit-setting
   search as an :class:`EmpiricalExitCurve` and compare the chosen exits
   against a naive placement.

Run:  python examples/train_multi_exit_classifier.py
"""

from __future__ import annotations

import numpy as np

from repro.core.exit_setting import (
    AverageEnvironment,
    branch_and_bound_exit_setting,
)
from repro.data import SyntheticImageDataset, train_val_test_split
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models import EmpiricalExitCurve, MultiExitDNN, build_model
from repro.nn import (
    MultiExitMLP,
    TrainingConfig,
    calibrate_thresholds,
    evaluate_combination,
    train_multi_exit,
)
from repro.nn.training import per_exit_accuracy
from repro.units import to_ms


def main() -> None:
    # 1. Train.  16 stages to mirror Inception v3's 16 chain units.
    generator = SyntheticImageDataset(num_chunks=16, chunk_dim=8, seed=0)
    dataset = generator.sample(12000, seed=1)
    train, val, test = train_val_test_split(dataset)
    net = MultiExitMLP(
        input_dim=generator.dim, num_classes=10, num_stages=16, hidden=64, seed=0
    )
    print("training a 16-stage multi-exit classifier (numpy, ~1 min)...")
    losses = train_multi_exit(
        net, train, TrainingConfig(epochs=35, learning_rate=0.08)
    )
    accuracy = per_exit_accuracy(net, test)
    print(f"loss {losses[0]:.2f} -> {losses[-1]:.2f}")
    print("per-exit accuracy:", " ".join(f"{a:.2f}" for a in accuracy))

    # 2. Calibrate thresholds and inspect the exit rates.
    calibration = calibrate_thresholds(net, val, accuracy_margin=0.02)
    print("thresholds:", " ".join(f"{t:.2f}" for t in calibration.thresholds))
    print("exit rates:", " ".join(f"{r:.2f}" for r in calibration.exit_rates))
    for first, second in ((2, 9), (5, 14), (9, 14)):
        combo = evaluate_combination(net, test, calibration, first, second)
        direction = "beats" if combo.accuracy_loss < 0 else "trails"
        print(
            f"  exits ({first:>2},{second:>2},16): accuracy "
            f"{combo.accuracy * 100:.1f}% — {direction} the original by "
            f"{abs(combo.accuracy_loss) * 100:.2f}pp; "
            f"σ = {tuple(round(s, 2) for s in combo.sigma)}"
        )

    # 3. Deploy: the measured rates drive the exit-setting search on the
    # Inception v3 latency profile (both have m=16 by construction).
    curve = EmpiricalExitCurve.from_measurements(
        calibration.deployment_curve_rates()
    )
    me_dnn = MultiExitDNN(build_model("inception-v3"), curve)
    environment = AverageEnvironment.from_platforms(
        RASPBERRY_PI_3B,
        EDGE_I7_3770,
        CLOUD_V100,
        WIFI_DEVICE_EDGE,
        INTERNET_EDGE_CLOUD,
        edge_share=0.25,
    )
    result = branch_and_bound_exit_setting(me_dnn, environment)
    naive = me_dnn.partition_at(1, 2)
    from repro.core.exit_setting import ExitCostModel

    cost_model = ExitCostModel(me_dnn, environment)
    naive_cost = cost_model.cost_at(1, 2)
    print(
        f"\nexit setting from measured rates: {result.selection.as_tuple()} "
        f"({to_ms(result.cost):.0f} ms/task expected) vs naive (1,2,16) "
        f"({to_ms(naive_cost):.0f} ms/task) — "
        f"{naive_cost / result.cost:.1f}x better"
    )


if __name__ == "__main__":
    main()

"""Smart-campus surveillance: many cameras, diurnal load, wild WiFi.

The scenario the paper's introduction motivates: a fleet of camera nodes
(Raspberry Pis at building entrances, Jetson Nanos at busy gates) runs
image recognition against a shared edge server, with

* a day/night load cycle (sinusoidal arrival rates, busier gates peaking
  higher), and
* WiFi bandwidth wandering through the wild 1-30 Mbps range (§II-A) as
  people and interference come and go.

The task-level event simulator tracks every frame through compute and
network queues; the report compares LEIME's online offloading against a
static capability-based rule, including tail latency — the metric a
security integrator actually cares about.

Run:  python examples/smart_campus_cameras.py
"""

from __future__ import annotations

from repro.core.exit_setting import branch_and_bound_exit_setting
from repro.core.leime import LeimeController
from repro.core.offloading import CapabilityBasedPolicy, DeviceConfig
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    JETSON_NANO,
    NetworkProfile,
    RASPBERRY_PI_3B,
)
from repro.models import MultiExitDNN, ParametricExitCurve, build_model
from repro.sim import EventSimulator, RandomWalkEnvironment, SinusoidalRateArrivals
from repro.units import mbps, ms, to_ms

#: One simulated day, one slot per "minute".
DAY_SLOTS = 24 * 60 // 10  # 10-minute resolution keeps the run snappy


def build_fleet() -> list[DeviceConfig]:
    """Six entrance Pis plus two busy-gate Nanos, each with its own WiFi."""
    fleet = []
    for i in range(6):
        fleet.append(
            DeviceConfig.from_platform(
                RASPBERRY_PI_3B,
                NetworkProfile(mbps(8.0 + i), ms(25.0)),
                mean_arrivals=0.2,
                name=f"entrance-{i}",
            )
        )
    for i in range(2):
        fleet.append(
            DeviceConfig.from_platform(
                JETSON_NANO,
                NetworkProfile(mbps(20.0), ms(15.0)),
                mean_arrivals=0.6,
                name=f"gate-{i}",
            )
        )
    return fleet


def diurnal_arrivals(fleet: list[DeviceConfig]) -> list[SinusoidalRateArrivals]:
    """Each camera's arrivals follow a day cycle scaled to its base rate."""
    return [
        SinusoidalRateArrivals(
            base=device.mean_arrivals,
            amplitude=device.mean_arrivals * 0.8,
            period=DAY_SLOTS,
        )
        for device in fleet
    ]


def main() -> None:
    fleet = build_fleet()
    me_dnn = MultiExitDNN(
        build_model("resnet-34"), ParametricExitCurve.from_complexity(0.4)
    )
    controller = LeimeController(
        me_dnn=me_dnn,
        devices=fleet,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
    )
    plan = controller.plan()
    print(f"Deployed ME-ResNet-34 with exits {plan.selection.as_tuple()}; "
          f"planning cost {to_ms(plan.cost):.0f} ms/task")

    environment = RandomWalkEnvironment(sigma=0.15)
    arrivals = diurnal_arrivals(fleet)

    for label, policy in (
        ("LEIME (online)", controller.policy),
        ("capability-based (static)", CapabilityBasedPolicy()),
    ):
        simulator = EventSimulator(
            system=controller.system(),
            arrivals=arrivals,
            environment=environment,
            seed=7,
        )
        result = simulator.run(policy, DAY_SLOTS)
        tier1, tier2, tier3 = result.exit_fractions()
        print(
            f"\n{label}:\n"
            f"  frames processed : {len(result.completed)}\n"
            f"  mean latency     : {to_ms(result.mean_tct):8.0f} ms\n"
            f"  p95 latency      : {to_ms(result.tct_percentile(95)):8.0f} ms\n"
            f"  p99 latency      : {to_ms(result.tct_percentile(99)):8.0f} ms\n"
            f"  exits (1/2/3)    : {tier1:.0%} / {tier2:.0%} / {tier3:.0%}\n"
            f"  offloaded frames : {result.offloaded_fraction():.0%}"
        )

    # What-if: a heavily loaded edge forces a different exit placement —
    # the Fig. 2(b) effect, visible straight from the planning API.
    loaded_env = controller.average_environment()
    loaded = branch_and_bound_exit_setting(
        me_dnn,
        type(loaded_env)(
            device_flops=loaded_env.device_flops,
            edge_flops=loaded_env.edge_flops * 0.1,
            cloud_flops=loaded_env.cloud_flops,
            device_edge=loaded_env.device_edge,
            edge_cloud=loaded_env.edge_cloud,
            device_overhead=loaded_env.device_overhead,
            edge_overhead=loaded_env.edge_overhead,
            cloud_overhead=loaded_env.cloud_overhead,
        ),
    )
    print(
        f"\nIf the edge were 10x more loaded, the planner would move the "
        f"exits from {plan.selection.as_tuple()} to "
        f"{loaded.selection.as_tuple()} (shallower Second-exit relieves "
        f"the edge, as in Fig. 2(b))."
    )


if __name__ == "__main__":
    main()

"""Slot and event simulators: conservation, stability, agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.offloading import (
    DriftPlusPenaltyPolicy,
    FixedRatioPolicy,
    LyapunovState,
)
from repro.sim.arrivals import ConstantArrivals, PoissonArrivals
from repro.sim.environment import (
    RandomWalkEnvironment,
    StaticEnvironment,
    TraceEnvironment,
)
from repro.sim.events import EventSimulator
from repro.sim.metrics import SimulationResult, SlotRecord, summarize
from repro.sim.simulator import SlotSimulator
from repro.hardware import NetworkProfile
from repro.units import mbps, ms


# -- slot simulator ------------------------------------------------------------


def test_slot_simulator_record_count(small_system):
    sim = SlotSimulator(system=small_system, arrivals=[PoissonArrivals(0.5)] * 2)
    result = sim.run(FixedRatioPolicy(0.5), 40)
    assert result.num_slots == 40
    assert result.total_arrivals > 0


def test_slot_simulator_needs_matching_arrivals(small_system):
    with pytest.raises(ValueError):
        SlotSimulator(system=small_system, arrivals=[PoissonArrivals(0.5)])


def test_slot_simulator_rejects_zero_slots(small_system):
    sim = SlotSimulator(system=small_system, arrivals=[PoissonArrivals(0.5)] * 2)
    with pytest.raises(ValueError):
        sim.run(FixedRatioPolicy(0.5), 0)


def test_slot_simulator_is_deterministic_per_seed(small_system):
    def run(seed):
        sim = SlotSimulator(
            system=small_system, arrivals=[PoissonArrivals(0.5)] * 2, seed=seed
        )
        return sim.run(DriftPlusPenaltyPolicy(v=50), 30)

    assert run(3).mean_tct == run(3).mean_tct
    assert run(3).mean_tct != run(4).mean_tct


def test_slot_simulator_warm_state_continues(small_system):
    sim = SlotSimulator(system=small_system, arrivals=[ConstantArrivals(0.5)] * 2)
    state = LyapunovState.zeros(2)
    sim.run(FixedRatioPolicy(0.0), 20, state=state)
    # The caller's state reflects the run.
    assert state.total_backlog() >= 0.0


def test_stable_policy_keeps_queues_bounded(small_system):
    sim = SlotSimulator(system=small_system, arrivals=[PoissonArrivals(0.4)] * 2)
    result = sim.run(DriftPlusPenaltyPolicy(v=50), 200)
    assert result.is_stable()
    assert result.final_backlog < 20


def test_overload_is_detected_as_unstable(small_system):
    """Arrivals far beyond device capacity with a forced-local policy must
    blow the local queues up."""
    sim = SlotSimulator(system=small_system, arrivals=[ConstantArrivals(20.0)] * 2)
    result = sim.run(FixedRatioPolicy(0.0, respect_constraint=False), 150)
    assert not result.is_stable()
    assert result.final_backlog > 100


def test_compare_uses_common_randomness(small_system):
    sim = SlotSimulator(
        system=small_system, arrivals=[PoissonArrivals(0.5)] * 2, seed=9
    )
    results = sim.compare(
        [("a", FixedRatioPolicy(1.0)), ("b", FixedRatioPolicy(1.0))], 30
    )
    assert results[0][1].mean_tct == pytest.approx(results[1][1].mean_tct)


# -- metrics -------------------------------------------------------------------


def test_simulation_result_percentile_and_timeline(small_system):
    sim = SlotSimulator(system=small_system, arrivals=[PoissonArrivals(0.5)] * 2)
    result = sim.run(FixedRatioPolicy(0.5), 50)
    timeline = result.tct_timeline()
    assert timeline.shape == (50,)
    assert result.tct_percentile(95) >= result.tct_percentile(50)


def test_simulation_result_requires_records():
    with pytest.raises(ValueError):
        SimulationResult(records=())


def test_slot_record_mean_tct_zero_when_empty():
    record = SlotRecord(
        slot=0,
        arrivals=0.0,
        total_time=0.0,
        ratios=(0.0,),
        queue_local=(0.0,),
        queue_edge=(0.0,),
    )
    assert record.mean_tct == 0.0


def test_summarize_formats_all_schemes(small_system):
    sim = SlotSimulator(system=small_system, arrivals=[PoissonArrivals(0.5)] * 2)
    result = sim.run(FixedRatioPolicy(0.5), 20)
    text = summarize([("mine", result)])
    assert "mine" in text and "mean TCT" in text


# -- environments --------------------------------------------------------------


def test_static_environment_passthrough(small_system):
    rng = np.random.default_rng(0)
    devices = StaticEnvironment().devices_at(0, small_system.devices, rng)
    assert devices == small_system.devices


def test_trace_environment_overrides_link(small_system):
    trace = (NetworkProfile(mbps(1), ms(5)), NetworkProfile(mbps(2), ms(5)))
    env = TraceEnvironment(trace)
    rng = np.random.default_rng(0)
    slot0 = env.devices_at(0, small_system.devices, rng)
    slot1 = env.devices_at(1, small_system.devices, rng)
    slot2 = env.devices_at(2, small_system.devices, rng)
    assert slot0[0].link.bandwidth == mbps(1)
    assert slot1[0].link.bandwidth == mbps(2)
    assert slot2[0].link.bandwidth == mbps(1)  # cycles


def test_random_walk_environment_clamps(small_system):
    env = RandomWalkEnvironment(sigma=2.0)
    rng = np.random.default_rng(0)
    for slot in range(50):
        devices = env.devices_at(slot, small_system.devices, rng)
        for device in devices:
            assert env.min_bandwidth <= device.link.bandwidth <= env.max_bandwidth


def test_random_walk_environment_is_a_walk(small_system):
    """Consecutive factors must be correlated (it's a walk, not jitter)."""
    env = RandomWalkEnvironment(sigma=0.05)
    rng = np.random.default_rng(1)
    series = [
        env.devices_at(t, small_system.devices, rng)[0].link.bandwidth
        for t in range(100)
    ]
    steps = np.abs(np.diff(series)) / np.array(series[:-1])
    # Single steps are small even though the walk wanders far.
    assert np.median(steps) < 0.2
    assert max(series) / min(series) > 1.1


# -- event simulator -----------------------------------------------------------


def test_event_sim_conservation(small_system):
    """Every generated task is either completed (after drain) or absent."""
    sim = EventSimulator(
        system=small_system, arrivals=[PoissonArrivals(0.4)] * 2, seed=0
    )
    result = sim.run(DriftPlusPenaltyPolicy(v=50), 50)
    assert result.completion_rate == 1.0
    assert all(t.done for t in result.tasks)
    assert all(t.tct > 0 for t in result.tasks)


def test_event_sim_exit_fractions_match_sigma(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[ConstantArrivals(2.0)] * 2, seed=1
    )
    result = sim.run(FixedRatioPolicy(0.5), 300)
    tier1, tier2, tier3 = result.exit_fractions()
    sigma1 = small_system.partition.sigma1
    sigma2 = small_system.partition.sigma2
    assert tier1 == pytest.approx(sigma1, abs=0.05)
    assert tier1 + tier2 == pytest.approx(sigma2, abs=0.05)
    assert tier1 + tier2 + tier3 == pytest.approx(1.0)


def test_event_sim_offloaded_fraction_tracks_ratio(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[ConstantArrivals(2.0)] * 2, seed=2
    )
    result = sim.run(FixedRatioPolicy(0.7), 200)
    assert result.offloaded_fraction() == pytest.approx(0.7, abs=0.06)


def test_event_sim_task_time_decomposition(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[PoissonArrivals(0.3)] * 2, seed=3
    )
    result = sim.run(FixedRatioPolicy(0.0), 30)
    for task in result.completed:
        parts = task.compute_time + task.transfer_time + task.queue_time
        assert parts == pytest.approx(task.tct, rel=1e-6, abs=1e-9)


def test_event_sim_unstable_drain_raises(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[ConstantArrivals(50.0)] * 2, seed=4
    )
    with pytest.raises(RuntimeError, match="unstable"):
        sim.run(
            FixedRatioPolicy(0.0, respect_constraint=False),
            50,
            drain_limit_factor=2.0,
        )


def test_event_sim_no_drain_counts_inflight(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[ConstantArrivals(5.0)] * 2, seed=5
    )
    result = sim.run(
        FixedRatioPolicy(0.0, respect_constraint=False), 30, drain=False
    )
    assert result.completion_rate < 1.0
    assert len(result.tasks) == 2 * 5 * 30


def test_event_sim_percentiles_ordered(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[PoissonArrivals(0.5)] * 2, seed=6
    )
    result = sim.run(DriftPlusPenaltyPolicy(v=50), 60)
    assert result.tct_percentile(50) <= result.tct_percentile(95)
    assert result.mean_tct > 0


def test_event_sim_timeline_by_creation_slot(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[ConstantArrivals(1.0)] * 2, seed=7
    )
    result = sim.run(FixedRatioPolicy(0.5), 20)
    timeline = result.tct_by_creation_slot(1.0, 20)
    assert timeline.shape == (20,)
    assert (timeline >= 0).all()
    assert timeline.max() > 0


def test_slot_and_event_simulators_agree_when_underloaded(small_system):
    """At light load both simulators should report TCTs of the same
    magnitude (the slot model is the analytic expectation of the event
    model, modulo its intra-slot FIFO approximations)."""
    arrivals = [ConstantArrivals(0.3)] * 2
    slot = SlotSimulator(system=small_system, arrivals=arrivals, seed=8).run(
        FixedRatioPolicy(1.0), 150
    )
    event = EventSimulator(system=small_system, arrivals=arrivals, seed=8).run(
        FixedRatioPolicy(1.0), 150
    )
    assert event.mean_tct == pytest.approx(slot.mean_tct, rel=0.6)


def test_event_sim_deadline_hit_rate(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[PoissonArrivals(0.4)] * 2, seed=9
    )
    result = sim.run(DriftPlusPenaltyPolicy(v=50), 60)
    generous = result.deadline_hit_rate(1e6)
    strict = result.deadline_hit_rate(1e-6)
    assert generous == 1.0
    assert strict == 0.0
    mid = result.deadline_hit_rate(result.tct_percentile(50))
    assert 0.3 <= mid <= 0.7
    with pytest.raises(ValueError):
        result.deadline_hit_rate(0.0)


def test_event_sim_deadline_counts_inflight_as_misses(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[ConstantArrivals(5.0)] * 2, seed=10
    )
    result = sim.run(
        FixedRatioPolicy(0.0, respect_constraint=False), 30, drain=False
    )
    assert result.completion_rate < 1.0
    assert result.deadline_hit_rate(1e6) < 1.0


def test_event_sim_per_device_mean_tct(small_system):
    sim = EventSimulator(
        system=small_system, arrivals=[PoissonArrivals(0.5)] * 2, seed=11
    )
    result = sim.run(FixedRatioPolicy(0.5), 60)
    per_device = result.per_device_mean_tct(2)
    assert len(per_device) == 2
    assert all(v > 0 for v in per_device)


def test_shared_uplink_contention_hurts(small_system):
    """A shared WiFi medium serialises all devices' uploads, so TCT can
    only get worse than with independent links of the same bandwidth."""
    arrivals = [ConstantArrivals(1.0)] * 2
    independent = EventSimulator(
        system=small_system, arrivals=arrivals, seed=12
    ).run(FixedRatioPolicy(1.0), 120)
    shared = EventSimulator(
        system=small_system, arrivals=arrivals, seed=12, shared_uplink=True
    ).run(FixedRatioPolicy(1.0), 120)
    assert shared.mean_tct >= independent.mean_tct * 0.99


def test_shared_uplink_single_device_equivalent(small_system):
    """With one device there is nothing to contend with."""
    from dataclasses import replace

    single = replace(
        small_system,
        devices=small_system.devices[:1],
        shares=(1.0,),
    )
    arrivals = [ConstantArrivals(0.5)]
    a = EventSimulator(system=single, arrivals=arrivals, seed=13).run(
        FixedRatioPolicy(1.0), 60
    )
    b = EventSimulator(
        system=single, arrivals=arrivals, seed=13, shared_uplink=True
    ).run(FixedRatioPolicy(1.0), 60)
    assert a.mean_tct == pytest.approx(b.mean_tct)

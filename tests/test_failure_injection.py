"""Failure injection: degenerate and hostile configurations.

A production system meets broken networks, starved edges and pathological
workloads; the library must degrade predictably — stable maths, defensible
decisions, loud errors — rather than crash or silently mis-report.
"""

from __future__ import annotations

import pytest

from repro.core.exit_setting import (
    AverageEnvironment,
    branch_and_bound_exit_setting,
    brute_force_exit_setting,
)
from repro.core.offloading import (
    DeviceConfig,
    DriftPlusPenaltyPolicy,
    EdgeSystem,
    FixedRatioPolicy,
    LyapunovState,
    feasible_ratio_interval,
    slot_cost,
)
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    NetworkProfile,
    RASPBERRY_PI_3B,
)
from repro.models.exit_rates import EmpiricalExitCurve
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import build_model
from repro.sim.arrivals import ConstantArrivals
from repro.sim.simulator import SlotSimulator
from repro.units import kbps, mbps


def _me_dnn(curve=None):
    return MultiExitDNN(build_model("squeezenet-1.0"), curve)


def _system(link, partition=None, arrivals=1.0):
    me_dnn = _me_dnn()
    partition = partition or me_dnn.partition_at(3, 6)
    device = DeviceConfig(
        name="d",
        flops=RASPBERRY_PI_3B.flops,
        link=link,
        mean_arrivals=arrivals,
        overhead=RASPBERRY_PI_3B.per_task_overhead,
    )
    return EdgeSystem(
        devices=(device,),
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=partition,
        shares=(1.0,),
    )


def test_dialup_link_forces_raw_input_offloading():
    """On a 56 kbps link the *intermediate* uploads (d₁ = 43× the raw
    input here) are what cannot fit: Eq. 8's feasible interval collapses
    toward full offloading of the tiny raw inputs, and the policy follows."""
    system = _system(NetworkProfile(kbps(56), 0.1), arrivals=2.0)
    partition = system.partition
    assert partition.d1 > 10 * partition.d0  # the premise
    lo, hi = feasible_ratio_interval(system.devices[0], partition, 1.0, 2.0)
    assert lo >= 0.95
    ratios = DriftPlusPenaltyPolicy(v=50).decide(
        system, LyapunovState.zeros(1), [2.0]
    )
    assert ratios[0] >= 0.95


def test_latency_longer_than_slot_means_no_transmission():
    system = _system(NetworkProfile(mbps(10), 2.0))  # 2 s latency, 1 s slot
    interval = feasible_ratio_interval(system.devices[0], system.partition, 1.0, 1.0)
    assert interval == (0.0, 0.0)


def test_slot_cost_survives_extreme_queues():
    system = _system(NetworkProfile(mbps(10), 0.02))
    cost = slot_cost(
        system.devices[0], system, 0.5, 5.0, 1e6, 1e6, 1.0
    )
    assert cost.y > 0
    assert cost.y < float("inf")


def test_all_tasks_exit_at_first_exit():
    """σ₁ = 1: nothing ever needs the edge or cloud; costs collapse to the
    device side and the tail vanishes."""
    profile = build_model("squeezenet-1.0")
    rates = [1.0] * profile.num_layers
    me_dnn = MultiExitDNN(profile, EmpiricalExitCurve.from_measurements(rates))
    partition = me_dnn.partition_at(3, 6)
    system = _system(NetworkProfile(mbps(10), 0.02), partition=partition)
    cost = slot_cost(system.devices[0], system, 0.0, 2.0, 0.0, 0.0, 1.0)
    assert cost.trans_local == 0.0
    assert cost.tail == 0.0


def test_starved_edge_pushes_search_to_corners():
    """An edge 1000× weaker than the device still yields a valid, optimal
    exit setting (everything meaningful happens on device/cloud)."""
    me_dnn = _me_dnn()
    env = AverageEnvironment(
        device_flops=RASPBERRY_PI_3B.flops,
        edge_flops=RASPBERRY_PI_3B.flops / 1000.0,
        cloud_flops=CLOUD_V100.flops,
        device_edge=NetworkProfile(mbps(10), 0.02),
        edge_cloud=INTERNET_EDGE_CLOUD,
    )
    fast = branch_and_bound_exit_setting(me_dnn, env)
    brute = brute_force_exit_setting(me_dnn, env)
    assert fast.selection == brute.selection
    assert fast.cost > 0


def test_simulator_with_zero_arrivals_everywhere():
    system = _system(NetworkProfile(mbps(10), 0.02), arrivals=0.0)
    result = SlotSimulator(
        system=system, arrivals=[ConstantArrivals(0.0)], seed=0
    ).run(FixedRatioPolicy(0.5), 20)
    assert result.mean_tct == 0.0
    assert result.final_backlog == 0.0
    assert result.is_stable()


def test_minimal_three_layer_chain_end_to_end():
    """The smallest legal chain (m=3) exercises every code path with the
    single possible selection (1, 2, 3)."""
    from repro.models.profile import DNNProfile, LayerProfile

    profile = DNNProfile(
        name="tiny",
        input_bytes=3072,
        layers=(
            LayerProfile("a", 1e8, (8, 8, 8)),
            LayerProfile("b", 1e8, (8, 4, 4)),
            LayerProfile("c", 1e8, (8, 2, 2)),
        ),
    )
    me_dnn = MultiExitDNN(profile)
    env = AverageEnvironment(
        device_flops=RASPBERRY_PI_3B.flops,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        device_edge=NetworkProfile(mbps(10), 0.02),
        edge_cloud=INTERNET_EDGE_CLOUD,
    )
    result = branch_and_bound_exit_setting(me_dnn, env)
    assert result.selection.as_tuple() == (1, 2, 3)
    system = _system(NetworkProfile(mbps(10), 0.02), partition=result.partition)
    sim_result = SlotSimulator(
        system=system, arrivals=[ConstantArrivals(0.5)], seed=0
    ).run(DriftPlusPenaltyPolicy(v=50), 30)
    assert sim_result.mean_tct > 0

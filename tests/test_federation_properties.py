"""Property harness for the federation layer.

Pins the structural invariants that make multi-edge results trustworthy:

* **SLO identity, per edge and globally** — every shard satisfies
  ``generated = completed + dropped + shed + in-flight`` and the
  per-edge identities sum to the global one.
* **Migration conservation** — assignment masks partition the slot axis
  (each slot's demand is generated at exactly one edge), so churn and
  failover never lose or duplicate tasks.
* **Seeded failover determinism** — the same seed replays the same
  failover byte-for-byte, identically on the scalar and fast event
  engines and on both fluid paths.
* **Empty-shard NaN convention** — rates over zero tasks are NaN, never
  ``ZeroDivisionError`` or an optimistic 0.0/1.0, through every summary
  aggregation layer.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.offloading import DriftPlusPenaltyPolicy, FixedRatioPolicy
from repro.federation import (
    AssignmentPlan,
    FederatedEventSimulator,
    FederatedSlotSimulator,
    assignment_from_trace,
    build_assignment_plan,
    canonical_partial_outage,
    federated_fluid_summary,
    federated_slo_summary,
)
from repro.runtime.system import RuntimeReport
from repro.sim.arrivals import ConstantArrivals, PoissonArrivals
from repro.sim.events import EventSimResult

from .helpers import random_federation_topology

NUM_SLOTS = 10


def _federation(seed: int, num_edges: int = 3, n: int = 6):
    topology = random_federation_topology(seed, num_edges, n)
    faults = canonical_partial_outage(NUM_SLOTS, num_edges, edge=0, seed=seed)
    plan = build_assignment_plan(
        topology,
        NUM_SLOTS,
        seed=seed,
        churn_per_100=20.0,
        saturation=1.5,
        outages=faults.edge_down,
    )
    arrivals = [PoissonArrivals(0.4) for _ in range(n)]
    return topology, plan, faults, arrivals


# -- SLO identity -----------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_per_edge_slo_identities_sum_to_global(seed: int) -> None:
    topology, plan, faults, arrivals = _federation(seed)
    result = FederatedEventSimulator(
        topology=topology,
        arrivals=arrivals,
        plan=plan,
        seed=seed,
        faults=faults,
    ).run(FixedRatioPolicy(0.5), NUM_SLOTS, drain_limit_factor=100.0)
    assert result.identity_holds()
    merged = result.merged()
    per_edge = [
        (
            len(r.tasks),
            len(r.completed),
            r.dropped_count,
            r.shed_count,
            r.in_flight_count,
        )
        for r in result.edge_results
    ]
    totals = [sum(col) for col in zip(*per_edge)]
    assert totals[0] == len(merged.tasks)
    assert totals[0] == sum(totals[1:])
    summary = federated_slo_summary(result)
    assert summary["identity_holds"]
    assert summary["global"]["tasks"] == totals[0]
    assert sum(e["tasks"] for e in summary["edges"]) == totals[0]


# -- migration conservation -------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_assignment_masks_partition_the_slot_axis(seed: int) -> None:
    """Each (slot, device) pair belongs to exactly one edge — the no-loss
    / no-duplication half of migration conservation."""
    topology, plan, _, _ = _federation(seed)
    for device in range(topology.num_devices):
        coverage = np.zeros(plan.num_slots, dtype=int)
        for edge in range(plan.num_edges):
            coverage += np.array(plan.slot_mask(edge, device), dtype=int)
        assert (coverage == 1).all()


@pytest.mark.parametrize("seed", range(4))
def test_migration_conserves_generated_tasks(seed: int) -> None:
    """Under deterministic arrivals (one task per device per slot), a
    churning, failing federation generates exactly ``S`` tasks per device
    — migration decides *where* each slot's task is served, never whether
    it exists.  (Poisson fleets can't make this comparison: each shard
    owns its own stream, so realised counts differ by design.)"""
    topology, plan, faults, arrivals = _federation(seed)
    constant = [ConstantArrivals(1.0) for _ in range(topology.num_devices)]
    moving = FederatedEventSimulator(
        topology=topology, arrivals=constant, plan=plan, seed=seed
    ).run(FixedRatioPolicy(0.5), NUM_SLOTS, drain_limit_factor=100.0)
    assert plan.migrations(), "the plan should actually migrate someone"
    # Conservation holds per device, not just in total.
    counts = [0] * topology.num_devices
    for r, members in zip(moving.edge_results, moving.edge_members):
        for t in r.tasks:
            counts[members[t.device]] += 1
    assert counts == [NUM_SLOTS] * topology.num_devices


def test_fluid_migration_conserves_backlog() -> None:
    """Re-assigning a device moves its Lyapunov queues with it: the
    global backlog right after a migration slot equals the sum of the
    per-edge backlogs — nothing is created or destroyed by re-homing."""
    topology, plan, faults, arrivals = _federation(3)
    result = FederatedSlotSimulator(
        topology=topology, arrivals=arrivals, plan=plan, seed=3
    ).run(FixedRatioPolicy(0.5), NUM_SLOTS)
    for slot in range(NUM_SLOTS):
        global_backlog = result.global_result.records[slot].backlog
        edge_backlog = sum(
            result.edge_records[e][slot].backlog
            for e in range(result.num_edges)
        )
        assert edge_backlog == pytest.approx(global_backlog, rel=1e-12)


# -- seeded failover --------------------------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_failover_is_deterministic(seed: int) -> None:
    """Same seed, same federation → byte-identical outcome, twice."""
    def run_once():
        topology, plan, faults, arrivals = _federation(seed)
        return FederatedEventSimulator(
            topology=topology,
            arrivals=arrivals,
            plan=plan,
            seed=seed,
            faults=faults,
        ).run(FixedRatioPolicy(0.5), NUM_SLOTS, drain_limit_factor=100.0)

    a, b = run_once(), run_once()
    assert a.edge_members == b.edge_members
    for ra, rb in zip(a.edge_results, b.edge_results):
        assert ra.tasks == rb.tasks
        assert ra.horizon == rb.horizon


@pytest.mark.parametrize("seed", range(4))
def test_failover_is_path_identical_across_event_engines(seed: int) -> None:
    topology, plan, faults, arrivals = _federation(seed)

    def run(engine: str):
        return FederatedEventSimulator(
            topology=topology,
            arrivals=arrivals,
            plan=plan,
            seed=seed,
            faults=faults,
        ).run(
            FixedRatioPolicy(0.5),
            NUM_SLOTS,
            drain_limit_factor=100.0,
            engine=engine,
        )

    scalar, fast = run("scalar"), run("fast")
    for ra, rb in zip(scalar.edge_results, fast.edge_results):
        assert len(ra.tasks) == len(rb.tasks)
        for ta, tb in zip(ra.tasks, rb.tasks):
            assert (ta.task_id, ta.device, ta.created, ta.offloaded) == (
                tb.task_id,
                tb.device,
                tb.created,
                tb.offloaded,
            )
            assert ta.exit_tier == tb.exit_tier
            assert ta.retries == tb.retries
            assert ta.dropped == tb.dropped
            assert (ta.completed is None) == (tb.completed is None)
            if ta.completed is not None:
                assert ta.completed == pytest.approx(tb.completed, abs=1e-9)


@pytest.mark.parametrize("seed", range(4))
def test_failover_is_path_identical_across_fluid_paths(seed: int) -> None:
    topology, plan, faults, arrivals = _federation(seed)

    def run(vectorized: bool):
        return FederatedSlotSimulator(
            topology=topology,
            arrivals=arrivals,
            plan=plan,
            seed=seed,
            vectorized=vectorized,
            faults=faults,
        ).run(DriftPlusPenaltyPolicy(v=20.0), NUM_SLOTS)

    scalar, vectorized = run(False), run(True)
    assert scalar.global_result.records == vectorized.global_result.records
    assert scalar.edge_records == vectorized.edge_records


def test_failover_rewrites_only_outage_slots() -> None:
    """Members of the dead edge point elsewhere for exactly the down
    window and return home on recovery."""
    topology, _, faults, _ = _federation(1)
    start = faults.meta["outage_start"]
    stop = faults.meta["outage_stop"]
    migrated = build_assignment_plan(
        topology, NUM_SLOTS, seed=1, outages=faults.edge_down
    )
    home = build_assignment_plan(topology, NUM_SLOTS, seed=1)
    assert not home.migrations()
    for slot in range(NUM_SLOTS):
        row, home_row = migrated.row(slot), home.row(slot)
        if start <= slot < stop:
            assert not (row == 0).any(), "no one may stay on the dead edge"
        else:
            assert (row == home_row).all()
    # The no-failover baseline leaves assignments untouched.
    stay = build_assignment_plan(
        topology, NUM_SLOTS, seed=1, outages=faults.edge_down, migrate=False
    )
    assert (stay.matrix == home.matrix).all()


# -- empty-shard NaN convention ---------------------------------------------


def test_empty_event_result_rates_are_nan() -> None:
    empty = EventSimResult(tasks=(), horizon=0.0)
    assert math.isnan(empty.completion_rate)
    assert math.isnan(empty.drop_rate)
    assert math.isnan(empty.shed_rate)
    assert math.isnan(empty.mean_tct)
    assert math.isnan(empty.offloaded_fraction())
    assert all(math.isnan(f) for f in empty.exit_fractions())


def test_empty_runtime_report_rates_are_nan() -> None:
    empty = RuntimeReport(tasks=(), virtual_duration=0.0)
    assert math.isnan(empty.completion_rate)
    assert math.isnan(empty.mean_tct)
    assert all(math.isnan(f) for f in empty.exit_fractions())


def test_federated_summary_handles_empty_shards() -> None:
    """A federation with an unpopulated edge summarises without
    ZeroDivisionError: the empty shard's rates are NaN, counters 0."""
    topology, _, _, arrivals = _federation(2)
    # Pin every device to edge 0: edges 1 and 2 stay empty.
    plan = AssignmentPlan(
        matrix=np.zeros((NUM_SLOTS, topology.num_devices), dtype=np.intp),
        num_edges=topology.num_edges,
    )
    result = FederatedEventSimulator(
        topology=topology, arrivals=arrivals, plan=plan, seed=2
    ).run(FixedRatioPolicy(0.5), NUM_SLOTS, drain_limit_factor=100.0)
    summary = federated_slo_summary(result, deadline=10.0)
    for edge in (1, 2):
        block = summary["edges"][edge]
        assert block["tasks"] == 0
        assert block["completed"] == 0
        assert math.isnan(block["completion_rate"])
        assert math.isnan(block["drop_rate"])
        assert math.isnan(block["shed_rate"])
        assert math.isnan(block["mean_tct"])
    assert summary["identity_holds"]
    assert summary["global"]["tasks"] == summary["edges"][0]["tasks"]


def test_federated_fluid_summary_empty_shard_mean_tct_is_nan() -> None:
    topology, _, _, arrivals = _federation(4)
    plan = AssignmentPlan(
        matrix=np.zeros((NUM_SLOTS, topology.num_devices), dtype=np.intp),
        num_edges=topology.num_edges,
    )
    result = FederatedSlotSimulator(
        topology=topology, arrivals=arrivals, plan=plan, seed=4
    ).run(FixedRatioPolicy(0.5), NUM_SLOTS)
    summary = federated_fluid_summary(result)
    assert math.isnan(summary["edges"][1]["mean_tct"])
    assert summary["edges"][1]["arrivals"] == 0.0
    assert summary["global"]["arrivals"] > 0.0
    assert summary["identity_gap"] < 1e-9


# -- assignment plan round-trips --------------------------------------------


def test_assignment_plan_trace_round_trip() -> None:
    topology, plan, _, _ = _federation(5)
    from repro.traces.schema import Trace

    trace = Trace(
        channels=(plan.to_channel(),),
        slot_length=1.0,
        meta={"origin": "test"},
    )
    rebuilt = assignment_from_trace(trace, num_edges=plan.num_edges)
    assert (rebuilt.matrix == plan.matrix).all()
    assert rebuilt.num_edges == plan.num_edges


def test_assignment_plan_row_clamps_past_horizon() -> None:
    plan = AssignmentPlan(
        matrix=np.array([[0, 1], [1, 0]], dtype=np.intp), num_edges=2
    )
    assert (plan.row(99) == plan.row(1)).all()
    with pytest.raises(ValueError):
        plan.row(-1)
    assert plan.member_union(0) == (0, 1)
    assert not plan.static

"""Hardware catalog: platforms, ratios, network profiles."""

from __future__ import annotations

import pytest

from repro import hardware
from repro.units import mbps, ms


def test_platform_rejects_bad_flops():
    with pytest.raises(ValueError):
        hardware.Platform("broken", 0.0)


def test_platform_rejects_negative_overhead():
    with pytest.raises(ValueError):
        hardware.Platform("broken", 1e9, per_task_overhead=-1.0)


def test_platform_compute_time():
    platform = hardware.Platform("x", 2e9)
    assert platform.compute_time(4e9) == pytest.approx(2.0)


def test_platform_compute_time_rejects_negative_work():
    with pytest.raises(ValueError):
        hardware.RASPBERRY_PI_3B.compute_time(-1.0)


def test_platform_scaled():
    half = hardware.EDGE_I7_3770.scaled(0.5)
    assert half.flops == pytest.approx(hardware.EDGE_I7_3770.flops / 2)
    assert half.name == hardware.EDGE_I7_3770.name


def test_platform_scaled_rename():
    loaded = hardware.EDGE_I7_3770.scaled(0.5, name="edge-loaded")
    assert loaded.name == "edge-loaded"


def test_platform_scaled_rejects_nonpositive():
    with pytest.raises(ValueError):
        hardware.EDGE_I7_3770.scaled(0.0)


def test_nano_pi_ratio_matches_paper():
    """§II-A: Jetson Nano is 8.2× a Raspberry Pi 3B+ on Inception v3."""
    ratio = hardware.JETSON_NANO.flops / hardware.RASPBERRY_PI_3B.flops
    assert ratio == pytest.approx(8.2, rel=0.01)


def test_edge_gpu_laptop_ratio_matches_paper():
    """§II-A: the GPU edge desktop is ~5× a laptop i5."""
    ratio = hardware.EDGE_GEFORCE_940MX.flops / hardware.LAPTOP_I5_7200U.flops
    assert ratio == pytest.approx(5.0, rel=0.01)


def test_platform_lookup():
    assert hardware.platform("jetson-nano") is hardware.JETSON_NANO


def test_platform_lookup_unknown_lists_names():
    with pytest.raises(KeyError, match="jetson-nano"):
        hardware.platform("nonexistent")


def test_network_profile_transfer_time():
    profile = hardware.NetworkProfile(bandwidth=mbps(8.0), latency=ms(50.0))
    # 1 MB over 1 MB/s plus 50 ms.
    assert profile.transfer_time(1e6) == pytest.approx(1.05)


def test_network_profile_zero_payload_is_free():
    profile = hardware.NetworkProfile(bandwidth=mbps(8.0), latency=ms(50.0))
    assert profile.transfer_time(0) == 0.0


def test_network_profile_rejects_negative_payload():
    with pytest.raises(ValueError):
        hardware.WIFI_DEVICE_EDGE.transfer_time(-1)


def test_network_profile_validation():
    with pytest.raises(ValueError):
        hardware.NetworkProfile(bandwidth=0.0, latency=0.0)
    with pytest.raises(ValueError):
        hardware.NetworkProfile(bandwidth=1.0, latency=-0.1)

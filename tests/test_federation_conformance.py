"""Cross-path conformance: an E=1 federation IS the single-edge system.

The federation package promises composition over modification: a
single-edge federation must replay the corresponding single-edge run
*byte-identically* on every execution path — fluid scalar, fluid
vectorized, scalar event engine, fast array event engine, and the live
runtime's reproducible control plane.  This harness pins that contract
over ≥25 seeded random fleets (the
``test_fast_events_differential.py`` idiom: fresh simulator and fresh
policy per side, seeded configurations spanning policies, arrival
mixes, overload governors, and lifted fault plans).
"""

from __future__ import annotations

import pytest

from repro.core.offloading import (
    BalanceOffloadingPolicy,
    DriftPlusPenaltyPolicy,
    FixedRatioPolicy,
)
from repro.federation import (
    FederatedEventSimulator,
    FederatedRuntime,
    FederatedSlotSimulator,
    build_assignment_plan,
    lift_fault_plan,
    single_edge_topology,
)
from repro.resilience.faults import canonical_outage_plan
from repro.resilience.overload import OverloadControl
from repro.resilience.recovery import RecoveryPolicy
from repro.runtime.system import LeimeRuntime
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator

from .helpers import random_fleet

#: ≥ 25 seeded fleets, as the acceptance criteria demand.
SEEDS = tuple(range(26))

NUM_DEVICES = 3
NUM_SLOTS = 8


def _policy(seed: int):
    """Seed-varied policies: the paper's drift-plus-penalty optimiser,
    the balance heuristic, and fixed ratios."""
    if seed % 3 == 0:
        return DriftPlusPenaltyPolicy(v=10.0 + seed)
    if seed % 3 == 1:
        return BalanceOffloadingPolicy()
    return FixedRatioPolicy(0.2 + 0.1 * (seed % 5))


def _fixture(seed: int):
    """One seeded E=1 configuration: the fleet, its federation wrapper,
    and the static single-edge plan."""
    system = random_fleet(100 + seed, NUM_DEVICES, heterogeneous=(seed % 4 == 0))
    topology = single_edge_topology(system)
    plan = build_assignment_plan(topology, NUM_SLOTS)
    arrivals = [
        PoissonArrivals(0.3 + 0.05 * (seed % 5)) for _ in range(NUM_DEVICES)
    ]
    overload = OverloadControl(queue_high=6.0, queue_low=2.0) if seed % 5 == 2 else None
    return system, topology, plan, arrivals, overload


def _assert_fluid_equal(single, federated, tag: str) -> None:
    """SlotRecord-for-SlotRecord equality (dataclass ``==`` covers every
    field: arrivals, total_time, ratios, both queues, shed, mode)."""
    assert len(single.records) == len(federated.records), tag
    for a, b in zip(single.records, federated.records):
        assert a == b, f"{tag} slot {a.slot}: {a} != {b}"


def _assert_tasks_equal(single, federated, tag: str) -> None:
    assert len(single.tasks) == len(federated.tasks), tag
    assert single.horizon == pytest.approx(federated.horizon, abs=1e-9), tag
    for ta, tb in zip(single.tasks, federated.tasks):
        ctx = f"{tag} task {ta.task_id}"
        assert ta.task_id == tb.task_id, ctx
        assert ta.device == tb.device, ctx
        assert ta.created == tb.created, ctx
        assert ta.offloaded == tb.offloaded, ctx
        assert ta.exit_tier == tb.exit_tier, ctx
        assert ta.retries == tb.retries, ctx
        assert ta.dropped == tb.dropped, ctx
        assert ta.shed == tb.shed, ctx
        assert (ta.completed is None) == (tb.completed is None), ctx
        if ta.completed is not None:
            assert ta.completed == pytest.approx(tb.completed, abs=1e-9), ctx


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("vectorized", (False, True), ids=("scalar", "vectorized"))
def test_fluid_path_conformance(seed: int, vectorized: bool) -> None:
    system, topology, plan, arrivals, overload = _fixture(seed)
    single = SlotSimulator(
        system=system,
        arrivals=arrivals,
        seed=seed,
        vectorized=vectorized,
        overload=overload,
    ).run(_policy(seed), NUM_SLOTS)
    federated = FederatedSlotSimulator(
        topology=topology,
        arrivals=arrivals,
        plan=plan,
        seed=seed,
        vectorized=vectorized,
        overload=overload,
    ).run(_policy(seed), NUM_SLOTS)
    tag = f"fluid/{'vec' if vectorized else 'scalar'}/seed={seed}"
    _assert_fluid_equal(single, federated.global_result, tag)
    # The single shard's per-edge records are the global records verbatim.
    _assert_fluid_equal(single, federated.edge_result(0), tag + "/edge0")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine", ("scalar", "fast"))
def test_event_path_conformance(seed: int, engine: str) -> None:
    system, topology, plan, arrivals, overload = _fixture(seed)
    faults = recovery = None
    if seed % 4 == 2:
        faults = canonical_outage_plan(
            num_slots=NUM_SLOTS, num_devices=NUM_DEVICES, seed=seed
        )
        recovery = RecoveryPolicy.default()
    single = EventSimulator(
        system=system,
        arrivals=arrivals,
        seed=seed,
        spread_arrivals=(seed % 2 == 0),
        faults=faults,
        recovery=recovery,
        overload=overload,
    ).run(_policy(seed), NUM_SLOTS, drain_limit_factor=100.0, engine=engine)
    federated = FederatedEventSimulator(
        topology=topology,
        arrivals=arrivals,
        plan=plan,
        seed=seed,
        spread_arrivals=(seed % 2 == 0),
        faults=lift_fault_plan(faults, 1) if faults is not None else None,
        recovery=recovery,
        overload=overload,
    ).run(_policy(seed), NUM_SLOTS, drain_limit_factor=100.0, engine=engine)
    tag = f"events/{engine}/seed={seed}"
    assert federated.num_edges == 1
    _assert_tasks_equal(single, federated.edge_results[0], tag)
    # Merging a single shard re-keys device-locally — a no-op at E=1.
    merged = federated.merged()
    assert [(t.device, t.created) for t in merged.tasks] == [
        (t.device, t.created) for t in single.tasks
    ], tag


#: The live path is wall-clock bound, so a spread of seeds (not the full
#: sweep) keeps the suite fast while still crossing fleets and rates.
RUNTIME_SEEDS = (0, 1, 2, 7, 13)


@pytest.mark.parametrize("seed", RUNTIME_SEEDS)
def test_runtime_path_conformance(seed: int) -> None:
    system, topology, plan, arrivals, _ = _fixture(seed)
    # The live controller feeds *real* queue occupancies to the policy,
    # so queue-sensitive policies (Balance, DPP) can flip a decision
    # under thread-scheduling jitter.  A fixed ratio makes the control
    # plane purely seed-driven — what this test is allowed to pin.
    policy = FixedRatioPolicy(0.2 + 0.1 * (seed % 5))
    runtime = LeimeRuntime(system, policy, speedup=1000.0, seed=seed)
    try:
        single = runtime.run(arrivals, num_slots=NUM_SLOTS, drain_timeout=30.0)
    finally:
        runtime.shutdown()
    federated = FederatedRuntime(
        topology, policy, plan, speedup=1000.0, seed=seed
    )
    try:
        report = federated.run(arrivals, num_slots=NUM_SLOTS, drain_timeout=30.0)
    finally:
        federated.shutdown()
    # Only the control plane is reproducible on live threads (timestamps
    # are wall-clock): task identity, owning device, offload decision.
    single_plane = [(t.task_id, t.device, t.offloaded) for t in single.tasks]
    federated_plane = [
        (task_id, device, offloaded)
        for _, task_id, device, offloaded in report.control_plane()
    ]
    assert single_plane == federated_plane, f"runtime/seed={seed}"


def test_single_edge_topology_reconstructs_system() -> None:
    """The anchor: ``build_shard`` over all devices rebuilds the wrapped
    system field-for-field, KKT shares included."""
    system = random_fleet(7, 4)
    topology = single_edge_topology(system)
    shard = topology.build_shard(0, range(system.num_devices))
    assert shard == system

"""Property tests for the paper's offloading invariants.

Where the differential harness checks that the two implementations agree,
this file checks that *both* satisfy what the paper proves or assumes:

* Eq. 8 — every policy decision respects the transmission constraint;
* Eqs. 10-11 — queues are never negative and stay bounded under a load
  the system can actually carry (the Theorem 3 stability regime);
* Eq. 20 — the device-side cost ``T^d`` is non-increasing and the
  edge-side cost ``T^e`` non-decreasing in ``x``, which is what makes the
  balance rule's bisection sound;
* Eq. 9 — the compute split conserves the device's slice.

Deterministic seeds parametrize the fleet sweeps (failures name the seed);
hypothesis drives the pointwise numeric invariants.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.offloading import (
    BalanceOffloadingPolicy,
    DriftPlusPenaltyPolicy,
    feasible_ratio_interval,
    slot_cost,
)
from repro.core.vectorized import (
    FleetParams,
    FleetState,
    VectorizedSlotEngine,
    balance_decide,
    dpp_decide,
    feasible_ratio_intervals,
)

from tests.helpers import (
    make_device,
    make_system,
    random_arrivals,
    random_fleet,
    random_queue_state,
)

SEEDS = range(60)


def _load(seed: int):
    n = 1 + seed % 10
    system = random_fleet(seed, n)
    state = random_queue_state(seed + 1, n)
    arrivals = random_arrivals(seed + 2, n)
    return system, state, arrivals


def _assert_feasible(system, arrivals, ratios):
    """Eq. 8: each decided ratio lies in its device's feasible interval."""
    for i, device in enumerate(system.devices):
        lo, hi = feasible_ratio_interval(
            device, system.partition_for(i), system.slot_length, arrivals[i]
        )
        assert lo - 1e-9 <= ratios[i] <= hi + 1e-9, (
            f"device {i}: x={ratios[i]} outside [{lo}, {hi}]"
        )


# -- Eq. 8 feasibility of policy outputs ---------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_dpp_decisions_are_transmission_feasible(seed):
    system, state, arrivals = _load(seed)
    for vectorized in (False, True):
        policy = DriftPlusPenaltyPolicy(v=50.0, vectorized=vectorized)
        _assert_feasible(system, arrivals, policy.decide(system, state, arrivals))


@pytest.mark.parametrize("seed", SEEDS)
def test_balance_decisions_are_transmission_feasible(seed):
    system, state, arrivals = _load(seed)
    for vectorized in (False, True):
        policy = BalanceOffloadingPolicy(vectorized=vectorized)
        _assert_feasible(system, arrivals, policy.decide(system, state, arrivals))


@pytest.mark.parametrize("seed", SEEDS)
def test_feasible_interval_endpoints_satisfy_constraint(seed):
    """The interval's own endpoints carry no more traffic than the budget
    (when the interval is non-degenerate the constraint truly holds)."""
    system, _, arrivals = _load(seed)
    params = FleetParams.from_system(system)
    lo, hi = feasible_ratio_intervals(
        params, system.slot_length, np.array(arrivals)
    )
    assert np.all(0.0 <= lo) and np.all(hi <= 1.0) and np.all(lo <= hi)
    for i in range(system.num_devices):
        part = system.partition_for(i)
        device = system.devices[i]
        budget = device.link.bandwidth * (
            system.slot_length - device.link.latency
        )
        if budget <= 0 or arrivals[i] == 0 or lo[i] == hi[i]:
            continue  # degenerate/best-effort cases carry no guarantee
        for x in (lo[i], hi[i]):
            load = arrivals[i] * x * part.d0 + arrivals[i] * (1.0 - x) * (
                1.0 - part.sigma1
            ) * part.d1
            assert load <= budget * (1 + 1e-9)


# -- queue dynamics ------------------------------------------------------------


@pytest.mark.parametrize("seed", range(20))
def test_queues_never_go_negative(seed):
    system, state, _ = _load(seed)
    fleet = FleetState.from_lyapunov(state)
    engine = VectorizedSlotEngine(system)
    policy = DriftPlusPenaltyPolicy(v=50.0, vectorized=True)
    for step in range(30):
        arrivals = random_arrivals(seed * 100 + step, system.num_devices)
        engine.step(policy, fleet, arrivals, arrivals)
        assert np.all(fleet.queue_local >= 0.0)
        assert np.all(fleet.queue_edge >= 0.0)


@pytest.mark.parametrize("seed", range(8))
def test_queue_stability_under_feasible_light_load(seed):
    """Theorem 3 regime: arrivals well inside capacity keep E[backlog]
    bounded — the time-averaged backlog must not grow with the horizon."""
    system = random_fleet(seed, 4, max_arrivals=0.3)
    policy = DriftPlusPenaltyPolicy(v=50.0, vectorized=True)
    engine = VectorizedSlotEngine(system)
    fleet = FleetState.zeros(4)
    backlogs = []
    for step in range(300):
        arrivals = random_arrivals(seed * 1000 + step, 4, high=0.3)
        engine.step(policy, fleet, arrivals, arrivals)
        backlogs.append(fleet.total_backlog())
    early = np.mean(backlogs[50:150])
    late = np.mean(backlogs[200:300])
    assert late <= max(2.0 * early, 10.0), "backlog keeps growing under light load"
    assert max(backlogs) < 1000.0


# -- Eq. 20 monotonicity -------------------------------------------------------


@pytest.mark.parametrize("seed", range(30))
def test_device_cost_decreases_and_edge_cost_increases_in_x(seed):
    """``T^d`` non-increasing, ``T^e`` non-decreasing in the offloading
    ratio — the single-crossing structure behind the balance rule."""
    system, state, arrivals = _load(seed)
    xs = np.linspace(0.0, 1.0, 21)
    for i, device in enumerate(system.devices):
        if arrivals[i] <= 0:
            continue
        costs = [
            slot_cost(
                device,
                system,
                float(x),
                arrivals[i],
                state.queue_local[i],
                state.queue_edge[i],
                system.shares[i],
                partition=system.partition_for(i),
            )
            for x in xs
        ]
        t_dev = [c.t_device for c in costs]
        t_edge = [c.t_edge for c in costs]
        assert all(
            a >= b - 1e-9 for a, b in zip(t_dev, t_dev[1:])
        ), f"T^d not non-increasing for device {i}, seed {seed}"
        assert all(
            a <= b + 1e-9 for a, b in zip(t_edge, t_edge[1:])
        ), f"T^e not non-decreasing for device {i}, seed {seed}"


@pytest.mark.parametrize("seed", range(20))
def test_balance_point_balances(seed):
    """An interior balance decision really equalises the two sides."""
    system, state, arrivals = _load(seed)
    ratios = balance_decide(system, state, arrivals, tolerance=1e-9)
    for i, device in enumerate(system.devices):
        lo, hi = feasible_ratio_interval(
            device, system.partition_for(i), system.slot_length, arrivals[i]
        )
        x = ratios[i]
        if arrivals[i] <= 0 or x <= lo + 1e-6 or x >= hi - 1e-6:
            continue  # clamped at an endpoint: no interior crossing exists
        cost = slot_cost(
            device,
            system,
            x,
            arrivals[i],
            state.queue_local[i],
            state.queue_edge[i],
            system.shares[i],
            partition=system.partition_for(i),
        )
        scale = max(cost.t_device, cost.t_edge, 1.0)
        assert abs(cost.t_device - cost.t_edge) <= 1e-3 * scale, (
            f"device {i}: T^d={cost.t_device} vs T^e={cost.t_edge}"
        )


# -- optimality of the DPP grid search -----------------------------------------


@pytest.mark.parametrize("seed", range(15))
def test_dpp_choice_beats_dense_grid(seed):
    """The refined-grid minimiser is no worse than a dense reference sweep
    of the same objective (within refinement resolution)."""
    from repro.core.offloading import drift_plus_penalty

    system, state, arrivals = _load(seed)
    ratios = dpp_decide(system, state, arrivals, v=50.0)

    def objective(i, x):
        cost = slot_cost(
            system.devices[i],
            system,
            x,
            arrivals[i],
            state.queue_local[i],
            state.queue_edge[i],
            system.shares[i],
            include_tail=False,
            partition=system.partition_for(i),
        )
        return drift_plus_penalty(
            cost, state.queue_local[i], state.queue_edge[i], 50.0
        )

    for i, device in enumerate(system.devices):
        lo, hi = feasible_ratio_interval(
            device, system.partition_for(i), system.slot_length, arrivals[i]
        )
        dense = np.linspace(lo, hi, 2001)
        best_dense = min(float(objective(i, x)) for x in dense)
        chosen = float(objective(i, ratios[i]))
        assert chosen <= best_dense + 1e-6 * max(abs(best_dense), 1.0)


# -- pointwise numeric invariants (hypothesis) ---------------------------------


@settings(max_examples=60, deadline=None)
@given(
    x=st.floats(0.0, 1.0),
    arrivals=st.floats(0.0, 5.0),
    q=st.floats(0.0, 50.0),
    h=st.floats(0.0, 50.0),
    bandwidth=st.floats(1.0, 30.0),
)
def test_slot_cost_components_are_finite_and_nonnegative(
    x, arrivals, q, h, bandwidth
):
    system = make_system(
        devices=(make_device(bandwidth_mbps=bandwidth), make_device())
    )
    cost = slot_cost(
        system.devices[0], system, x, arrivals, q, h, system.shares[0]
    )
    for value in (
        cost.wait_local,
        cost.proc_local,
        cost.trans_local,
        cost.trans_edge,
        cost.wait_edge,
        cost.proc_edge,
        cost.tail,
        cost.total_time,
    ):
        assert np.isfinite(value) and value >= 0.0
    assert cost.local_tasks + cost.offloaded_tasks == pytest.approx(arrivals)


@settings(max_examples=60, deadline=None)
@given(
    arrivals=st.floats(0.0, 10.0),
    bandwidth=st.floats(0.5, 50.0),
    latency=st.floats(0.0, 2000.0),
)
def test_feasible_interval_is_well_formed(arrivals, bandwidth, latency):
    system = make_system(
        devices=(
            make_device(bandwidth_mbps=bandwidth, latency_ms=latency),
            make_device(),
        )
    )
    lo, hi = feasible_ratio_interval(
        system.devices[0], system.partition, system.slot_length, arrivals
    )
    assert 0.0 <= lo <= hi <= 1.0

"""Event-simulator mechanics against closed-form queueing theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.events import _Engine
from repro.sim.network import Link
from repro.sim.nodes import FifoServer
from repro.sim.validation import (
    md1_mean_sojourn,
    md1_mean_wait,
    mm1_mean_wait,
    utilisation,
)
from repro.hardware import NetworkProfile


def test_utilisation_and_validation():
    assert utilisation(2.0, 0.25) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        utilisation(-1.0, 0.1)
    with pytest.raises(ValueError):
        md1_mean_wait(10.0, 0.2)  # rho = 2
    with pytest.raises(ValueError):
        mm1_mean_wait(10.0, 0.2)


def test_md1_formula_values():
    # rho = 0.5, s = 0.5: Wq = 1*0.25/(2*0.5) = 0.25
    assert md1_mean_wait(1.0, 0.5) == pytest.approx(0.25)
    assert md1_mean_sojourn(1.0, 0.5) == pytest.approx(0.75)


def _simulate_md1(rate: float, service: float, num_jobs: int, seed: int) -> float:
    """Drive a single FifoServer with Poisson arrivals and deterministic
    service; return the mean sojourn time."""
    rng = np.random.default_rng(seed)
    engine = _Engine()
    server = FifoServer("q", rate=1.0)  # demand = service time
    sojourns: list[float] = []
    time = 0.0
    for _ in range(num_jobs):
        time += float(rng.exponential(1.0 / rate))
        arrival = time

        def submit(t: float, _arrival=arrival) -> None:
            def done(finish: float, _service: float) -> None:
                sojourns.append(finish - _arrival)

            server.submit(engine, t, service, done)

        engine.schedule(arrival, submit)
    engine.run_to_exhaustion(hard_limit=time * 100)
    return float(np.mean(sojourns))


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
def test_fifo_server_matches_pollaczek_khinchine(rho):
    """The event simulator's FIFO server reproduces M/D/1 sojourn times
    within Monte-Carlo tolerance."""
    service = 0.1
    rate = rho / service
    simulated = _simulate_md1(rate, service, num_jobs=20000, seed=1)
    theoretical = md1_mean_sojourn(rate, service)
    assert simulated == pytest.approx(theoretical, rel=0.08)


def test_fifo_server_counts_jobs_and_busy_time():
    engine = _Engine()
    server = FifoServer("s", rate=2.0, overhead=0.1)
    done = []
    server.submit(engine, 0.0, 1.0, lambda t, s: done.append((t, s)))
    server.submit(engine, 0.0, 1.0, lambda t, s: done.append((t, s)))
    engine.run_to_exhaustion(hard_limit=100.0)
    assert server.jobs_served == 2
    # Each job: 1.0/2.0 + 0.1 overhead = 0.6 s.
    assert server.busy_time == pytest.approx(1.2)
    assert done[0][0] == pytest.approx(0.6)
    assert done[1][0] == pytest.approx(1.2)


def test_fifo_server_validation():
    with pytest.raises(ValueError):
        FifoServer("bad", rate=0.0)
    with pytest.raises(ValueError):
        FifoServer("bad", rate=1.0, overhead=-0.1)
    engine = _Engine()
    server = FifoServer("s", rate=1.0)
    with pytest.raises(ValueError):
        server.submit(engine, 0.0, -1.0, lambda t, s: None)


def test_fifo_server_occupancy():
    engine = _Engine()
    server = FifoServer("s", rate=1.0)
    assert server.occupancy == 0
    server.submit(engine, 0.0, 5.0, lambda t, s: None)
    server.submit(engine, 0.0, 5.0, lambda t, s: None)
    assert server.busy
    assert server.queue_length == 1
    assert server.occupancy == 2


def test_link_propagation_pipelines():
    """Propagation delays the delivery but frees the link immediately:
    two back-to-back transfers each serialise for 1 s but arrive 0.5 s
    after their serialisation completes."""
    engine = _Engine()
    link = Link("hop", NetworkProfile(bandwidth=100.0, latency=0.5))
    deliveries = []
    link.transmit(engine, 0.0, 100.0, lambda t, s: deliveries.append(t))
    link.transmit(engine, 0.0, 100.0, lambda t, s: deliveries.append(t))
    engine.run_to_exhaustion(hard_limit=100.0)
    assert deliveries[0] == pytest.approx(1.5)  # 1 s serialise + 0.5 s prop
    assert deliveries[1] == pytest.approx(2.5)  # queued behind the first


def test_link_reconfigure_affects_future_transfers():
    engine = _Engine()
    link = Link("hop", NetworkProfile(bandwidth=100.0, latency=0.0))
    deliveries = []
    link.transmit(engine, 0.0, 100.0, lambda t, s: deliveries.append(t))
    engine.run_to_exhaustion(hard_limit=100.0)
    link.reconfigure(NetworkProfile(bandwidth=200.0, latency=0.0))
    link.transmit(engine, engine.now, 100.0, lambda t, s: deliveries.append(t))
    engine.run_to_exhaustion(hard_limit=100.0)
    assert deliveries[0] == pytest.approx(1.0)
    assert deliveries[1] - deliveries[0] == pytest.approx(0.5)


def test_engine_rejects_past_events():
    engine = _Engine()
    engine.schedule(1.0, lambda t: None)
    engine.run_until(2.0)
    with pytest.raises(ValueError):
        engine.schedule(1.0, lambda t: None)

"""Control-plane fault plans and the epoch-fenced controller.

Pins: plan generation determinism and serialization (with the schema
stamp), the fencing semantics (last-good under bounded staleness,
epoch increments at restart, dead-epoch rejection), duplication
idempotence, composability with data-plane fault plans, and mirroring
across all execution paths (fluid scalar/vectorized byte-identical,
event scalar/fast per-task identical, E=1 federation ≡ single-edge,
live runtime smoke).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    ControlFaultError,
    ControlFaultPlan,
    ControlFaultSpec,
    FencedController,
    canonical_coordinator_outage,
    control_plans_equal,
    generate_control_fault_plan,
    load_control_fault_plan,
    save_control_fault_plan,
)
from repro.core.offloading import DriftPlusPenaltyPolicy
from repro.resilience.faults import canonical_outage_plan
from repro.resilience.recovery import RecoveryPolicy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator

from .helpers import random_fleet, single_edge_fixture

SLOTS = 12
N = 3


def _arrivals(system):
    return [PoissonArrivals(d.mean_arrivals) for d in system.devices]


def _fenced(plan, **kwargs):
    return FencedController(DriftPlusPenaltyPolicy(v=50.0), plan, **kwargs)


# -- plan data model ---------------------------------------------------------


def test_generation_is_deterministic_and_channel_split():
    spec = ControlFaultSpec(num_slots=64)
    a = generate_control_fault_plan(spec, seed=7)
    b = generate_control_fault_plan(spec, seed=7)
    assert control_plans_equal(a, b)
    assert not control_plans_equal(a, generate_control_fault_plan(spec, seed=8))
    # Per-channel split streams: disabling one channel leaves the others
    # bit-identical.
    import dataclasses

    no_drop = generate_control_fault_plan(
        dataclasses.replace(spec, drop_prob=0.0), seed=7
    )
    assert np.array_equal(a.delay, no_drop.delay)
    assert np.array_equal(a.dup, no_drop.dup)
    assert np.array_equal(a.skew, no_drop.skew)
    assert np.array_equal(a.down, no_drop.down)
    assert not np.any(no_drop.drop)


def test_healthy_out_of_range_and_windows():
    plan = canonical_coordinator_outage(60, seed=0)
    start, stop = plan.meta["down_start"], plan.meta["down_stop"]
    assert plan.down_at(start) and plan.down_at(stop - 1)
    assert (start, stop) in plan.down_windows()
    # Out of range: all healthy.
    assert not plan.down_at(-1) and not plan.down_at(10_000)
    assert plan.delay_at(10_000) == 0
    assert plan.skew_at(10_000) == 0.0
    desc = plan.describe()
    assert desc["down_slots"] >= stop - start


@pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
def test_round_trip_with_schema_stamp(tmp_path, suffix):
    plan = generate_control_fault_plan(ControlFaultSpec(num_slots=24), seed=3)
    path = tmp_path / f"ctrl{suffix}"
    save_control_fault_plan(plan, path)
    loaded = load_control_fault_plan(path)
    assert control_plans_equal(plan, loaded)
    assert loaded.slot_length == plan.slot_length


def test_schema_mismatch_is_loud():
    plan = generate_control_fault_plan(ControlFaultSpec(num_slots=8), seed=0)
    trace = plan.to_trace()
    meta = dict(trace.meta)
    meta["control_plan_schema_version"] = 99
    import dataclasses

    with pytest.raises(ControlFaultError, match="schema"):
        ControlFaultPlan.from_trace(dataclasses.replace(trace, meta=meta))


def test_plan_validation():
    with pytest.raises(ControlFaultError):
        ControlFaultSpec(num_slots=0)
    with pytest.raises(ControlFaultError):
        ControlFaultSpec(drop_prob=1.5)
    with pytest.raises(ControlFaultError, match="delay"):
        ControlFaultPlan(
            delay=np.array([-1.0]),
            drop=np.zeros(1),
            dup=np.zeros(1),
            skew=np.zeros(1),
            down=np.zeros(1),
        )


# -- fencing semantics -------------------------------------------------------


def _decide(controller, system, slot_count):
    from repro.core.offloading import LyapunovState

    state = LyapunovState.zeros(system.num_devices)
    expected = [d.mean_arrivals for d in system.devices]
    return [
        controller.decide(system, state, expected, system.devices)
        for _ in range(slot_count)
    ]


def test_down_serves_last_good_then_fences():
    system = random_fleet(0, N)
    down = np.zeros(12)
    down[2:9] = 1.0  # a 7-slot outage against max_staleness=4
    plan = ControlFaultPlan(
        delay=np.zeros(12),
        drop=np.zeros(12),
        dup=np.zeros(12),
        skew=np.zeros(12),
        down=down,
    )
    controller = _fenced(plan, max_staleness=4.0)
    ratios = _decide(controller, system, 12)
    healthy = ratios[1]  # last allocation minted before the crash
    # Within staleness (ages 1..4 at slots 2..5): last-good served.
    for slot in (2, 3, 4, 5):
        assert ratios[slot] == healthy, slot
    # Past the bound: fenced to local-only.
    for slot in (6, 7, 8):
        assert ratios[slot] == [0.0] * N, slot
    assert controller.stale_served == 4
    assert controller.fenced_rejections >= 3


def test_epoch_increments_and_dead_epoch_rejected():
    system = random_fleet(1, N)
    down = np.zeros(10)
    down[3:5] = 1.0
    drop = np.zeros(10)
    # A telemetry drop right at the restart slot: the only cached
    # allocation was minted in the dead epoch, so it must be fenced out
    # (not reused) and the edge re-anchors fresh.
    drop[5] = 1.0
    plan = ControlFaultPlan(
        delay=np.zeros(10),
        drop=drop,
        dup=np.zeros(10),
        skew=np.zeros(10),
        down=down,
    )
    controller = _fenced(plan, max_staleness=10.0)
    ratios = _decide(controller, system, 10)
    # Restart at slot 5 → epoch 1, anchored there; the pre-crash
    # allocation is rejected despite generous staleness, and slot 5
    # re-anchors on a freshly computed (healthy-equal) allocation.
    assert controller.epoch == 1
    assert controller.epoch_anchors == [5]
    assert controller.fenced_rejections == 1
    assert controller.drops_reused == 0
    assert ratios[5] == ratios[0]


def test_clock_skew_tightens_staleness():
    system = random_fleet(2, N)
    down = np.zeros(6)
    down[2:4] = 1.0
    skew = np.zeros(6)
    skew[3] = 3.5  # age 2 + |skew| 3.5 > max_staleness 4
    plan = ControlFaultPlan(
        delay=np.zeros(6),
        drop=np.zeros(6),
        dup=np.zeros(6),
        skew=skew,
        down=down,
    )
    controller = _fenced(plan, max_staleness=4.0)
    ratios = _decide(controller, system, 6)
    assert ratios[2] == ratios[1]  # age 1, no skew: served
    assert ratios[3] == [0.0] * N  # skew pushes age past the bound


def test_drop_and_delay_reuse_last_good():
    system = random_fleet(3, N)
    drop = np.zeros(6)
    drop[2] = 1.0
    delay = np.zeros(6)
    delay[4] = 2.0
    plan = ControlFaultPlan(
        delay=delay,
        drop=drop,
        dup=np.zeros(6),
        skew=np.zeros(6),
        down=np.zeros(6),
    )
    controller = _fenced(plan)
    ratios = _decide(controller, system, 6)
    assert ratios[2] == ratios[1]
    assert ratios[4] == ratios[3]
    assert controller.drops_reused == 1
    assert controller.delays_reused == 1


def test_dup_only_plan_is_idempotent():
    """Duplicated allocation messages are merged idempotently: a
    dup-only plan leaves the run byte-identical to the healthy run."""
    system = random_fleet(4, N, max_arrivals=1.0)
    arrivals = _arrivals(system)
    dup = np.zeros(SLOTS)
    dup[1::2] = 1.0
    plan = ControlFaultPlan(
        delay=np.zeros(SLOTS),
        drop=np.zeros(SLOTS),
        dup=dup,
        skew=np.zeros(SLOTS),
        down=np.zeros(SLOTS),
    )
    healthy = SlotSimulator(system, arrivals, seed=4).run(
        DriftPlusPenaltyPolicy(v=50.0), SLOTS
    )
    controller = _fenced(plan)
    duped = SlotSimulator(system, arrivals, seed=4).run(controller, SLOTS)
    assert duped.records == healthy.records
    assert controller.dups_deduped == SLOTS // 2


# -- cross-path mirroring ----------------------------------------------------


def _control_plan(seed):
    return canonical_coordinator_outage(SLOTS, seed=seed)


def test_fenced_fluid_paths_byte_identical():
    for seed in range(8):
        system = random_fleet(seed, N, max_arrivals=1.0)
        arrivals = _arrivals(system)
        results = []
        for vectorized in (False, True):
            sim = SlotSimulator(
                system, arrivals, seed=seed, vectorized=vectorized
            )
            controller = FencedController(
                DriftPlusPenaltyPolicy(v=50.0, vectorized=vectorized),
                _control_plan(seed),
            )
            results.append(sim.run(controller, SLOTS))
        assert results[0].records == results[1].records, seed


def test_fenced_event_engines_per_task_identical():
    for seed in range(8):
        system = random_fleet(seed, N, max_arrivals=1.0)
        arrivals = _arrivals(system)
        results = []
        for engine in ("scalar", "fast"):
            sim = EventSimulator(system, arrivals, seed=seed)
            results.append(
                sim.run(
                    FencedController(
                        DriftPlusPenaltyPolicy(v=50.0), _control_plan(seed)
                    ),
                    SLOTS,
                    engine=engine,
                )
            )
        assert results[0].tasks == results[1].tasks, seed


def test_fenced_composes_with_data_plane_faults():
    """A ControlFaultPlan and a FaultPlan stack: the fenced controller
    wraps the policy while the data-plane plan drives retries — both
    event engines still agree per task."""
    for seed in range(4):
        system = random_fleet(seed, N, max_arrivals=1.0)
        arrivals = _arrivals(system)
        faults = canonical_outage_plan(SLOTS, N, seed)
        results = []
        for engine in ("scalar", "fast"):
            sim = EventSimulator(
                system,
                arrivals,
                seed=seed,
                faults=faults,
                recovery=RecoveryPolicy.default(),
            )
            results.append(
                sim.run(
                    FencedController(
                        DriftPlusPenaltyPolicy(v=50.0), _control_plan(seed)
                    ),
                    SLOTS,
                    engine=engine,
                )
            )
        assert results[0].tasks == results[1].tasks, seed


def test_fenced_federation_e1_matches_single_edge():
    """E=1 conformance: the federated fluid coordinator (driving
    begin_slot) reproduces the single-edge fluid run byte-for-byte under
    the same control-fault plan."""
    from repro.federation.fluid import FederatedSlotSimulator

    for seed in range(6):
        system, topology, plan = single_edge_fixture(seed, N, SLOTS)
        arrivals = _arrivals(system)
        single = SlotSimulator(system, arrivals, seed=seed).run(
            FencedController(DriftPlusPenaltyPolicy(v=50.0), _control_plan(seed)),
            SLOTS,
        )
        federated = FederatedSlotSimulator(
            topology=topology, arrivals=arrivals, plan=plan, seed=seed
        ).run(
            FencedController(DriftPlusPenaltyPolicy(v=50.0), _control_plan(seed)),
            SLOTS,
        )
        assert federated.global_result.records == single.records, seed


def test_fenced_federated_event_shards_deep_copy_cleanly():
    """The federated event wrapper deep-copies the fenced controller per
    shard; both engines agree per task."""
    from repro.federation.events import FederatedEventSimulator

    from .helpers import random_federation_topology, static_home_plan

    topology = random_federation_topology(0, 2, 4, max_arrivals=1.0)
    plan = static_home_plan(topology, SLOTS)
    arrivals = [PoissonArrivals(d.mean_arrivals) for d in topology.devices]
    results = []
    for engine in ("scalar", "fast"):
        sim = FederatedEventSimulator(
            topology=topology, arrivals=arrivals, plan=plan, seed=0
        )
        results.append(
            sim.run(
                FencedController(DriftPlusPenaltyPolicy(v=50.0), _control_plan(0)),
                SLOTS,
                engine=engine,
            )
        )
    for a, b in zip(results[0].edge_results, results[1].edge_results):
        assert a.tasks == b.tasks


def test_fenced_runtime_smoke():
    """The live runtime completes under a fenced controller (control
    decisions only read the plan — no wall-clock coupling) and shuts
    down cleanly."""
    from repro.experiments.common import TestbedConfig, leime_scheme
    from repro.runtime import LeimeRuntime

    config = TestbedConfig(num_devices=2, arrival_rate=0.4)
    system = config.system(leime_scheme(config).partition)
    runtime = LeimeRuntime(
        system,
        FencedController(DriftPlusPenaltyPolicy(v=50.0), _control_plan(0)),
        speedup=2000.0,
        seed=0,
    )
    try:
        report = runtime.run(config.arrival_processes(), num_slots=SLOTS)
    finally:
        assert runtime.shutdown()
    assert len(report.tasks) == (
        len(report.completed)
        + report.dropped_count
        + report.shed_count
        + report.in_flight_count
    )


def test_fenced_controller_reset():
    system = random_fleet(5, N)
    plan = _control_plan(5)
    controller = _fenced(plan)
    first = _decide(controller, system, SLOTS)
    controller.reset()
    assert controller.epoch == 0 and not controller.epoch_anchors
    assert _decide(controller, system, SLOTS) == first

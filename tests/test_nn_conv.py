"""Convolutional substrate: im2col/col2im, Conv2d, GlobalAvgPool, CNN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_images import SyntheticPatchImageDataset
from repro.nn.conv import Conv2d, GlobalAvgPool, col2im, im2col
from repro.nn.functional import cross_entropy
from repro.nn.multi_exit_cnn import MultiExitCNN


def _numeric_grad(f, param, eps=1e-6):
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = param[idx]
        param[idx] = original + eps
        up = f()
        param[idx] = original - eps
        down = f()
        param[idx] = original
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


# -- im2col / col2im -----------------------------------------------------------


def test_im2col_shapes():
    x = np.arange(2 * 3 * 5 * 5, dtype=np.float64).reshape(2, 3, 5, 5)
    cols, out_h, out_w = im2col(x, kernel=3, stride=1, padding=1)
    assert (out_h, out_w) == (5, 5)
    assert cols.shape == (2 * 25, 3 * 9)


def test_im2col_identity_kernel():
    """A 1x1 window at stride 1 is just a reshape."""
    x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
    cols, out_h, out_w = im2col(x, kernel=1, stride=1, padding=0)
    assert np.allclose(
        cols.reshape(2, 4, 4, 3).transpose(0, 3, 1, 2), x
    )


def test_im2col_rejects_collapse():
    x = np.zeros((1, 1, 2, 2))
    with pytest.raises(ValueError):
        im2col(x, kernel=5, stride=1, padding=0)


def test_col2im_adjointness():
    """col2im is the transpose of im2col: <im2col(x), c> == <x, col2im(c)>."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 3, 6, 6))
    cols, out_h, out_w = im2col(x, kernel=3, stride=2, padding=1)
    c = rng.normal(size=cols.shape)
    lhs = float((cols * c).sum())
    folded = col2im(c, x.shape, kernel=3, stride=2, padding=1, out_h=out_h, out_w=out_w)
    rhs = float((x * folded).sum())
    assert lhs == pytest.approx(rhs, rel=1e-10)


# -- Conv2d ---------------------------------------------------------------------


def test_conv2d_matches_direct_convolution():
    rng = np.random.default_rng(2)
    conv = Conv2d(2, 4, kernel=3, rng=rng, padding=1)
    x = rng.normal(size=(1, 2, 5, 5))
    out = conv.forward(x, train=False)
    assert out.shape == (1, 4, 5, 5)
    # Direct computation at one output position.
    padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
    window = padded[0, :, 1:4, 2:5]
    expected = float((window * conv.weight[1]).sum() + conv.bias[1])
    assert out[0, 1, 1, 2] == pytest.approx(expected)


def test_conv2d_stride_halves_grid():
    rng = np.random.default_rng(3)
    conv = Conv2d(3, 8, kernel=3, rng=rng, stride=2, padding=1)
    out = conv.forward(np.zeros((2, 3, 8, 8)), train=False)
    assert out.shape == (2, 8, 4, 4)


def test_conv2d_gradient_check():
    rng = np.random.default_rng(4)
    conv = Conv2d(2, 3, kernel=3, rng=rng, padding=1)
    x = rng.normal(size=(2, 2, 4, 4))
    target = rng.normal(size=(2, 3, 4, 4))

    def loss():
        return 0.5 * float(((conv.forward(x, train=False) - target) ** 2).sum())

    conv.zero_grad()
    out = conv.forward(x)
    grad_x = conv.backward(out - target)
    assert grad_x.shape == x.shape
    assert np.allclose(
        conv.grad_weight, _numeric_grad(loss, conv.weight), atol=1e-4
    )
    assert np.allclose(conv.grad_bias, _numeric_grad(loss, conv.bias), atol=1e-4)
    # Input gradient via finite differences on a few entries.
    eps = 1e-6
    for idx in [(0, 0, 0, 0), (1, 1, 2, 3), (0, 1, 3, 1)]:
        x[idx] += eps
        up = loss()
        x[idx] -= 2 * eps
        down = loss()
        x[idx] += eps
        assert grad_x[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-4)


def test_conv2d_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        Conv2d(0, 3, 3, rng)
    with pytest.raises(ValueError):
        Conv2d(1, 3, 3, rng, stride=0)
    conv = Conv2d(1, 1, 3, rng, padding=1)
    with pytest.raises(ValueError):
        conv.forward(np.zeros((2, 3)))
    with pytest.raises(RuntimeError):
        Conv2d(1, 1, 3, rng, padding=1).backward(np.zeros((1, 1, 4, 4)))


# -- GlobalAvgPool ----------------------------------------------------------------


def test_global_avg_pool_forward_backward():
    pool = GlobalAvgPool()
    x = np.arange(2 * 3 * 2 * 2, dtype=np.float64).reshape(2, 3, 2, 2)
    out = pool.forward(x)
    assert out.shape == (2, 3)
    assert out[0, 0] == pytest.approx(x[0, 0].mean())
    grad = pool.backward(np.ones((2, 3)))
    assert grad.shape == x.shape
    assert np.allclose(grad, 0.25)


# -- MultiExitCNN ------------------------------------------------------------------


def test_cnn_forward_shapes():
    net = MultiExitCNN(in_channels=3, num_classes=10, num_stages=4, width=8)
    logits = net.forward_all(np.zeros((2, 3, 12, 12)))
    assert len(logits) == 4
    assert all(l.shape == (2, 10) for l in logits)


def test_cnn_gradient_check():
    """Joint-loss gradient check through conv trunk + GAP heads."""
    rng = np.random.default_rng(5)
    net = MultiExitCNN(
        in_channels=2, num_classes=3, num_stages=3, width=4, downsample_at=2, seed=1
    )
    x = rng.normal(size=(3, 2, 6, 6))
    y = rng.integers(0, 3, size=3)

    def loss():
        logits = net.forward_all(x, train=False)
        return sum(
            w * cross_entropy(l, y) for w, l in zip(net.loss_weights, logits)
        )

    analytic = net.train_batch(x, y)
    assert analytic == pytest.approx(loss())
    for param, grad in zip(net.params(), net.grads()):
        numeric = _numeric_grad(loss, param)
        assert np.allclose(grad, numeric, atol=1e-4)


def test_cnn_validation():
    with pytest.raises(ValueError):
        MultiExitCNN(3, 10, num_stages=2)
    with pytest.raises(ValueError):
        MultiExitCNN(3, 10, num_stages=3, width=0)
    with pytest.raises(ValueError):
        MultiExitCNN(3, 10, num_stages=3, loss_weights=[1.0])
    net = MultiExitCNN(3, 10, num_stages=3)
    with pytest.raises(ValueError):
        net.forward_all(np.zeros((2, 3)))


# -- image dataset ------------------------------------------------------------------


def test_image_dataset_shapes_and_determinism():
    gen = SyntheticPatchImageDataset(size=8, channels=2)
    a = gen.sample(50, seed=3)
    b = gen.sample(50, seed=3)
    assert a.x.shape == (50, 2, 8, 8)
    assert np.array_equal(a.x, b.x)
    flat = a.flatten()
    assert flat.x.shape == (50, 2 * 8 * 8)


def test_image_dataset_easy_signal_is_local():
    gen = SyntheticPatchImageDataset(
        size=8, hard_fraction=0.0, noise=0.0, label_noise=0.0,
        distractor_fraction=0.0,
    )
    data = gen.sample(100, seed=0)
    p = gen.patch_size
    outside = np.abs(data.x[:, :, p:, p:]).sum()
    inside = np.abs(data.x[:, :, :p, :p]).sum()
    assert outside == pytest.approx(0.0, abs=1e-12)
    assert inside > 0


def test_image_dataset_validation():
    with pytest.raises(ValueError):
        SyntheticPatchImageDataset(patch_size=20, size=8)
    with pytest.raises(ValueError):
        SyntheticPatchImageDataset(num_classes=1)
    gen = SyntheticPatchImageDataset()
    with pytest.raises(ValueError):
        gen.sample(0)

"""The four evaluation networks: published-shape checks."""

from __future__ import annotations

import pytest

from repro.models import zoo


def test_zoo_names():
    assert set(zoo.MODEL_BUILDERS) == {
        "vgg-16",
        "resnet-34",
        "inception-v3",
        "squeezenet-1.0",
        "mobilenet-v1",
    }


def test_build_model_unknown():
    with pytest.raises(KeyError, match="vgg-16"):
        zoo.build_model("alexnet")


def test_vgg16_structure():
    profile = zoo.vgg16()
    assert profile.num_layers == 13  # 13 conv units
    assert profile.layers[-1].output_shape == (512, 1, 1)
    # CIFAR VGG-16: ~0.63 GFLOPs with 2 FLOPs/MAC.
    assert profile.total_flops == pytest.approx(0.627e9, rel=0.02)


def test_resnet34_structure():
    profile = zoo.resnet34()
    assert profile.num_layers == 17  # stem + 16 basic blocks
    assert profile.layers[-1].output_shape == (512, 7, 7)
    # ResNet-34 @224: ~7.3 GFLOPs with 2 FLOPs/MAC.
    assert profile.total_flops == pytest.approx(7.3e9, rel=0.05)


def test_inception_v3_structure():
    profile = zoo.inception_v3()
    assert profile.num_layers == 16  # matches the paper's exit indices
    assert profile.layers[-1].output_shape == (2048, 8, 8)
    # Inception v3 @299: ~11.4 GFLOPs with 2 FLOPs/MAC.
    assert profile.total_flops == pytest.approx(11.4e9, rel=0.05)


def test_inception_v3_named_stages():
    profile = zoo.inception_v3()
    names = [layer.name for layer in profile.layers]
    assert names[5] == "mixed5b"
    assert names[13] == "mixed7a"
    assert profile.layers[13].output_shape == (1280, 8, 8)
    assert profile.layers[8].output_shape == (768, 17, 17)


def test_squeezenet_structure():
    profile = zoo.squeezenet1_0()
    assert profile.num_layers == 9  # conv stem + 8 fire modules
    assert profile.layers[-1].output_shape == (512, 4, 4)
    # The CIFAR SqueezeNet is by far the smallest model.
    assert profile.total_flops < 0.2e9


def test_all_models_share_cifar_input_bytes():
    for name in zoo.MODEL_BUILDERS:
        assert zoo.build_model(name).input_bytes == 32 * 32 * 3


def test_large_small_model_grouping():
    """Fig. 10's discussion groups Inception v3/ResNet-34 as large and
    SqueezeNet-1.0/VGG-16 as small; the FLOPs ordering must reflect it."""
    flops = {name: zoo.build_model(name).total_flops for name in zoo.MODEL_BUILDERS}
    assert min(flops["inception-v3"], flops["resnet-34"]) > max(
        flops["vgg-16"], flops["squeezenet-1.0"]
    )


def test_intermediate_bytes_match_shapes():
    profile = zoo.vgg16()
    assert profile.intermediate_bytes(0) == profile.input_bytes
    assert profile.intermediate_bytes(1) == 64 * 32 * 32 * 4
    assert profile.intermediate_bytes(13) == 512 * 1 * 1 * 4


def test_describe_mentions_every_layer():
    profile = zoo.squeezenet1_0()
    text = profile.describe()
    for layer in profile.layers:
        assert layer.name in text


def test_mobilenet_v1_structure():
    profile = zoo.mobilenet_v1()
    assert profile.num_layers == 14  # stem + 13 depthwise-separable units
    assert profile.layers[-1].output_shape == (1024, 7, 7)
    # Published: 0.57 GMACs = 1.14 GFLOPs with 2 FLOPs/MAC.
    assert profile.total_flops == pytest.approx(1.14e9, rel=0.03)


def test_mobilenet_exit_setting_works():
    """The new profile plugs into the whole pipeline."""
    from repro.core.exit_setting import (
        AverageEnvironment,
        branch_and_bound_exit_setting,
        brute_force_exit_setting,
    )
    from repro.hardware import (
        CLOUD_V100,
        EDGE_I7_3770,
        INTERNET_EDGE_CLOUD,
        RASPBERRY_PI_3B,
        WIFI_DEVICE_EDGE,
    )
    from repro.models.multi_exit import MultiExitDNN

    me_dnn = MultiExitDNN(zoo.mobilenet_v1())
    env = AverageEnvironment.from_platforms(
        RASPBERRY_PI_3B,
        EDGE_I7_3770,
        CLOUD_V100,
        WIFI_DEVICE_EDGE,
        INTERNET_EDGE_CLOUD,
        edge_share=0.25,
    )
    fast = branch_and_bound_exit_setting(me_dnn, env)
    brute = brute_force_exit_setting(me_dnn, env)
    assert fast.selection == brute.selection

"""Online exit-rate estimation and adaptive re-planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import (
    AdaptiveExitController,
    ComplexityEstimator,
    ExitRateEstimator,
)
from repro.core.exit_setting import (
    AverageEnvironment,
    branch_and_bound_exit_setting,
)
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models.exit_rates import ParametricExitCurve
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import build_model


@pytest.fixture(scope="module")
def profile():
    return build_model("inception-v3")


@pytest.fixture(scope="module")
def environment():
    return AverageEnvironment.from_platforms(
        RASPBERRY_PI_3B,
        EDGE_I7_3770,
        CLOUD_V100,
        WIFI_DEVICE_EDGE,
        INTERNET_EDGE_CLOUD,
        edge_share=0.25,
    )


# -- estimator ----------------------------------------------------------------


def test_estimator_first_batch_sets_estimates():
    estimator = ExitRateEstimator(alpha=0.2)
    estimator.observe(30, 20, 100)
    assert estimator.sigma1 == pytest.approx(0.3)
    assert estimator.sigma2 == pytest.approx(0.5)
    assert estimator.observations == 100


def test_estimator_ewma_converges():
    estimator = ExitRateEstimator(alpha=0.3)
    estimator.observe(10, 10, 100)  # start far away
    for _ in range(50):
        estimator.observe(60, 20, 100)
    assert estimator.sigma1 == pytest.approx(0.6, abs=0.01)
    assert estimator.sigma2 == pytest.approx(0.8, abs=0.01)


def test_estimator_validation():
    estimator = ExitRateEstimator()
    with pytest.raises(ValueError):
        ExitRateEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        estimator.observe(1, 1, 0)
    with pytest.raises(ValueError):
        estimator.observe(-1, 0, 10)
    with pytest.raises(ValueError):
        estimator.observe(6, 5, 10)


# -- complexity inversion -------------------------------------------------------


def test_complexity_estimator_recovers_a(profile):
    """Feeding exact σ = u^a observations recovers the generating a."""
    m = profile.num_layers
    for true_a in (0.4, 1.0, 2.5):
        curve = ParametricExitCurve(a=true_a)
        rates = curve.rates(profile)
        estimator = ComplexityEstimator(profile, 5, 14)
        estimate = estimator.estimate(rates[4], rates[13])
        assert estimate.a == pytest.approx(true_a, rel=0.02)
        assert estimate.implied_sigma1 == pytest.approx(rates[4], abs=0.02)


def test_complexity_estimator_degenerate_rates(profile):
    estimator = ComplexityEstimator(profile, 5, 14)
    estimate = estimator.estimate(0.0, 1.0)
    assert estimate.a > 0  # falls back to something sane


def test_complexity_estimator_pinned_sigma(profile):
    """σ pinned at 0 or 1 carries no shape information: the inversion
    clamps it into (0, 1), always yields a finite positive ``a``, and the
    pinned extremes bracket every interior observation."""
    estimator = ComplexityEstimator(profile, 5, 14)
    # σ₁ = 0 (no task exits early) → data looks maximally hard → large a.
    hard = estimator.estimate(0.0, 0.0)
    # σ₁ = 1 (every task exits early) → maximally easy → tiny a.
    easy = estimator.estimate(1.0, 1.0)
    for est in (hard, easy):
        assert est.a > 0
        assert np.isfinite(est.a)
        assert 0.0 < est.implied_sigma1 < 1.0
    interior = estimator.estimate(0.5, 0.8)
    assert easy.a < interior.a < hard.a
    # Clamping makes the pinned values indistinguishable from barely
    # off-pinned ones — σ=0 and σ=ε estimate the same curve.
    assert estimator.estimate(0.0, 0.0).a == pytest.approx(
        estimator.estimate(1e-9, 1e-9).a
    )
    assert estimator.estimate(1.0, 1.0).a == pytest.approx(
        estimator.estimate(1.0 - 1e-12, 1.0 - 1e-12).a
    )


def test_complexity_estimator_validation(profile):
    with pytest.raises(ValueError):
        ComplexityEstimator(profile, 14, 5)
    with pytest.raises(ValueError):
        ComplexityEstimator(profile, 0, 5)


# -- adaptive controller ---------------------------------------------------------


def _simulate_outcomes(
    me_dnn: MultiExitDNN, selection, n: int, rng: np.random.Generator
) -> tuple[int, int, int]:
    """Sample per-tier exit outcomes from a 'true' exit curve."""
    sigma1 = me_dnn.exit_rate(selection.first)
    sigma2 = me_dnn.exit_rate(selection.second)
    draws = rng.random(n)
    first = int((draws < sigma1).sum())
    second = int(((draws >= sigma1) & (draws < sigma2)).sum())
    return first, second, n


def test_no_replan_without_drift(profile, environment):
    controller = AdaptiveExitController(profile, environment)
    truth = MultiExitDNN(profile, ParametricExitCurve(a=1.0))  # matches prior
    rng = np.random.default_rng(0)
    for _ in range(10):
        first, second, total = _simulate_outcomes(
            truth, controller.plan.selection, 100, rng
        )
        controller.observe(first, second, total)
        assert controller.maybe_replan() is None
    assert controller.replan_count == 0


def test_replan_on_complexity_drift(profile, environment):
    """When the data turns much easier than planned for, the controller
    must replan toward the easy-data optimum."""
    controller = AdaptiveExitController(
        profile, environment, drift_threshold=0.08
    )
    initial_selection = controller.plan.selection
    true_a = 0.3  # much easier data than the a=1 prior
    truth = MultiExitDNN(profile, ParametricExitCurve(a=true_a))
    rng = np.random.default_rng(1)
    replanned = None
    for _ in range(30):
        first, second, total = _simulate_outcomes(
            truth, controller.plan.selection, 200, rng
        )
        controller.observe(first, second, total)
        replanned = controller.maybe_replan() or replanned
        if replanned is not None:
            break
    assert replanned is not None
    assert controller.replan_count == 1
    # The new plan approximates planning with the true curve directly.
    oracle = branch_and_bound_exit_setting(truth, environment)
    assert abs(replanned.cost - oracle.cost) / oracle.cost < 0.15
    assert replanned.selection != initial_selection or (
        replanned.partition.sigma1 != controller.plan.partition.sigma1
    )


def test_replan_for_environment_caches_repeat_conditions(profile, environment):
    """Re-planning against a condition seen before (after quantization)
    serves the cached plan without re-running the search."""
    from dataclasses import replace

    from repro.hardware import NetworkProfile

    controller = AdaptiveExitController(profile=profile, environment=environment)
    slow = replace(
        environment,
        device_edge=NetworkProfile(
            environment.device_edge.bandwidth * 0.1,
            environment.device_edge.latency,
        ),
    )
    first = controller.replan_for_environment(slow)
    assert controller.plan_cache_hits == 0
    # Same conditions again (bit-identical): a cache hit, same plan object.
    again = controller.replan_for_environment(slow)
    assert again is first
    assert controller.plan_cache_hits == 1
    # A sub-0.1% bandwidth wiggle quantizes onto the same key.
    wiggle = replace(
        slow,
        device_edge=NetworkProfile(
            slow.device_edge.bandwidth * 1.0003,
            slow.device_edge.latency,
        ),
    )
    assert controller.replan_for_environment(wiggle) is first
    assert controller.plan_cache_hits == 2
    # Returning to the original environment replays the deployment plan.
    assert controller.replan_for_environment(environment).selection
    assert controller.plan_cache_hits == 3
    # Every call counted as a replan, hit or not.
    assert controller.replan_count == 4


def test_plan_cache_invalidated_by_curve_change(profile, environment):
    """A drift-triggered curve refresh must not reuse stale-σ plans."""
    controller = AdaptiveExitController(
        profile=profile,
        environment=environment,
        drift_threshold=0.05,
        min_observations=10,
    )
    baseline = controller.replan_for_environment(environment)
    assert controller.plan_cache_hits == 1  # deployment plan replayed
    # Feed observations implying much easier data than the a=1 prior.
    controller.observe(90, 8, 100)
    drifted = controller.maybe_replan()
    assert drifted is not None
    # Same environment, new curve: the stale-σ plan is NOT replayed — the
    # cache key includes the curve, so the refreshed plan is served.
    refreshed = controller.replan_for_environment(environment)
    assert refreshed is not baseline
    assert refreshed is drifted


def test_controller_validation(profile, environment):
    with pytest.raises(ValueError):
        AdaptiveExitController(profile, environment, drift_threshold=0.0)


def test_min_observations_gate(profile, environment):
    controller = AdaptiveExitController(
        profile, environment, min_observations=1000, drift_threshold=0.01
    )
    truth = MultiExitDNN(profile, ParametricExitCurve(a=0.3))
    rng = np.random.default_rng(2)
    first, second, total = _simulate_outcomes(
        truth, controller.plan.selection, 100, rng
    )
    controller.observe(first, second, total)
    assert controller.maybe_replan() is None  # not enough evidence yet


def test_adaptive_controller_closes_loop_with_event_simulator(
    profile, environment
):
    """End-to-end: the event simulator produces real exit outcomes, the
    controller consumes them — drift is detected from *simulated* data,
    not hand-crafted draws."""
    from repro.core.offloading import DeviceConfig, EdgeSystem, FixedRatioPolicy
    from repro.hardware import (
        CLOUD_V100,
        EDGE_I7_3770,
        INTERNET_EDGE_CLOUD,
        RASPBERRY_PI_3B,
        WIFI_DEVICE_EDGE,
    )
    from repro.sim.arrivals import ConstantArrivals
    from repro.sim.events import EventSimulator

    controller = AdaptiveExitController(
        profile, environment, drift_threshold=0.08, min_observations=50
    )
    # Deploy the controller's plan, but the *world* serves much easier
    # data (a = 0.25) than the a = 1.0 planning prior.
    world = MultiExitDNN(profile, ParametricExitCurve(a=0.25))
    selection = controller.plan.selection
    deployed = world.partition(
        world.selection(selection.first, selection.second)
    )
    system = EdgeSystem(
        devices=(
            DeviceConfig.from_platform(
                RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 1.0, name="pi"
            ),
        ),
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=deployed,
        shares=(1.0,),
    )
    result = EventSimulator(
        system=system, arrivals=[ConstantArrivals(2.0)], seed=4
    ).run(FixedRatioPolicy(0.5), 120)
    tier1, tier2, _ = result.exit_fractions()
    total = len(result.completed)
    controller.observe(round(tier1 * total), round(tier2 * total), total)
    replanned = controller.maybe_replan()
    assert replanned is not None, "easier-than-planned data must trigger a replan"
    # The refreshed curve acknowledges the easier data: higher σ₁ at the
    # (possibly new) First-exit than the stale plan assumed.
    assert replanned.partition.sigma1 > 0.3

"""Differential harness: the vectorized engine vs the scalar oracle.

Every test here sweeps seeded random fleets (the seed appears in the test
ID, so a failure names the instance that broke) and asserts that
``repro.core.vectorized`` agrees with the scalar implementations in
``repro.core.offloading`` / ``repro.core.resource_allocation`` to 1e-9 —
in practice the two paths are bit-identical because the batched formulas
mirror the scalar arithmetic operation-for-operation.
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np
import pytest

from repro.core.offloading import (
    BalanceOffloadingPolicy,
    DriftPlusPenaltyPolicy,
    LyapunovState,
    drift_plus_penalty,
    edge_compute_split,
    feasible_ratio_interval,
    slot_cost,
)
from repro.core.resource_allocation import (
    floored_edge_allocation,
    kkt_edge_allocation,
)
from repro.core.vectorized import (
    FleetParams,
    FleetState,
    VectorizedSlotEngine,
    balance_decide,
    dpp_decide,
    drift_plus_penalty_batch,
    edge_compute_split_batch,
    feasible_ratio_intervals,
    floored_edge_allocation_batch,
    kkt_edge_allocation_batch,
    slot_cost_batch,
)
from repro.sim.arrivals import PoissonArrivals
from repro.sim.environment import RandomWalkEnvironment
from repro.sim.simulator import SlotSimulator

from tests.helpers import random_arrivals, random_fleet, random_queue_state

TOL = 1e-9
# ≥100 randomized fleets, as the acceptance criteria demand.
SEEDS = range(120)


def _fleet_size(seed: int) -> int:
    return 1 + seed % 12


def _instance(seed: int, heterogeneous: bool = False):
    """One random differential instance: fleet, backlog, arrivals, ratios."""
    n = _fleet_size(seed)
    system = random_fleet(seed, n, heterogeneous=heterogeneous)
    state = random_queue_state(seed + 1, n)
    arrivals = random_arrivals(seed + 2, n)
    ratios = [float(v) for v in np.random.default_rng(seed + 3).uniform(0, 1, n)]
    return system, state, arrivals, ratios


def _scalar_costs(system, state, ratios, arrivals, include_tail=True):
    return [
        slot_cost(
            system.devices[i],
            system,
            ratios[i],
            arrivals[i],
            state.queue_local[i],
            state.queue_edge[i],
            system.shares[i],
            include_tail=include_tail,
            partition=system.partition_for(i),
        )
        for i in range(system.num_devices)
    ]


# -- per-formula agreement -----------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_slot_cost_batch_matches_scalar_componentwise(seed):
    """Every Eq. 12-14 component agrees device-by-device."""
    system, state, arrivals, ratios = _instance(seed)
    params = FleetParams.from_system(system)
    batch = slot_cost_batch(
        params,
        system,
        np.array(ratios),
        np.array(arrivals),
        np.array(state.queue_local),
        np.array(state.queue_edge),
    )
    scalars = _scalar_costs(system, state, ratios, arrivals)
    for name in (f.name for f in fields(batch)):
        got = getattr(batch, name)
        want = np.array([getattr(c, name) for c in scalars])
        np.testing.assert_allclose(
            got, want, rtol=TOL, atol=TOL, err_msg=f"field {name!r}, seed {seed}"
        )
    for prop in ("t_device", "t_edge", "y", "total_time"):
        got = getattr(batch, prop)
        want = np.array([getattr(c, prop) for c in scalars])
        np.testing.assert_allclose(
            got, want, rtol=TOL, atol=TOL, err_msg=f"property {prop!r}, seed {seed}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_feasible_intervals_match_scalar(seed):
    system, _, arrivals, _ = _instance(seed)
    params = FleetParams.from_system(system)
    lo, hi = feasible_ratio_intervals(
        params, system.slot_length, np.array(arrivals)
    )
    for i, device in enumerate(system.devices):
        want_lo, want_hi = feasible_ratio_interval(
            device, system.partition_for(i), system.slot_length, arrivals[i]
        )
        assert lo[i] == pytest.approx(want_lo, abs=TOL), f"lo[{i}], seed {seed}"
        assert hi[i] == pytest.approx(want_hi, abs=TOL), f"hi[{i}], seed {seed}"


@pytest.mark.parametrize("seed", SEEDS)
def test_edge_compute_split_matches_scalar(seed):
    system, _, _, ratios = _instance(seed)
    params = FleetParams.from_system(system)
    f1, f2 = edge_compute_split_batch(
        np.array(ratios), params, system.edge_flops
    )
    for i in range(system.num_devices):
        want = edge_compute_split(
            ratios[i], system.shares[i], system.edge_flops, system.partition_for(i)
        )
        assert f1[i] == pytest.approx(want[0], rel=TOL, abs=TOL), f"seed {seed}"
        assert f2[i] == pytest.approx(want[1], rel=TOL, abs=TOL), f"seed {seed}"


@pytest.mark.parametrize("seed", SEEDS)
def test_drift_plus_penalty_matches_scalar(seed):
    system, state, arrivals, ratios = _instance(seed)
    params = FleetParams.from_system(system)
    q = np.array(state.queue_local)
    h = np.array(state.queue_edge)
    batch = slot_cost_batch(
        params, system, np.array(ratios), np.array(arrivals), q, h,
        include_tail=False,
    )
    got = drift_plus_penalty_batch(batch, q, h, v=50.0)
    scalars = _scalar_costs(system, state, ratios, arrivals, include_tail=False)
    want = [
        drift_plus_penalty(c, state.queue_local[i], state.queue_edge[i], 50.0)
        for i, c in enumerate(scalars)
    ]
    np.testing.assert_allclose(got, want, rtol=TOL, atol=TOL, err_msg=f"seed {seed}")


@pytest.mark.parametrize("seed", SEEDS)
def test_kkt_allocation_matches_scalar(seed):
    rng = np.random.default_rng(seed)
    n = _fleet_size(seed)
    flops = rng.uniform(1e9, 1e11, n)
    rates = rng.uniform(0.0, 3.0, n)
    if seed % 5 == 0:  # exercise the zero-demand branches too
        rates[: max(1, n // 2)] = 0.0
    edge = float(rng.uniform(1e10, 1e12))
    got = kkt_edge_allocation_batch(flops, rates, edge)
    want = kkt_edge_allocation(list(flops), list(rates), edge)
    np.testing.assert_allclose(got, want, rtol=TOL, atol=TOL, err_msg=f"seed {seed}")
    got_floored = floored_edge_allocation_batch(flops, rates, edge, min_share=0.05)
    want_floored = floored_edge_allocation(list(flops), list(rates), edge, 0.05)
    np.testing.assert_allclose(
        got_floored, want_floored, rtol=TOL, atol=TOL, err_msg=f"seed {seed}"
    )


# -- policy decisions ----------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_dpp_decide_matches_scalar_policy(seed):
    system, state, arrivals, _ = _instance(seed)
    want = DriftPlusPenaltyPolicy(v=50.0).decide(system, state, arrivals)
    got = dpp_decide(system, state, arrivals, v=50.0)
    np.testing.assert_allclose(got, want, rtol=TOL, atol=TOL, err_msg=f"seed {seed}")


@pytest.mark.parametrize("seed", SEEDS)
def test_balance_decide_matches_scalar_policy(seed):
    system, state, arrivals, _ = _instance(seed)
    want = BalanceOffloadingPolicy().decide(system, state, arrivals)
    got = balance_decide(system, state, arrivals)
    np.testing.assert_allclose(got, want, rtol=TOL, atol=TOL, err_msg=f"seed {seed}")


@pytest.mark.parametrize("seed", range(0, 40))
def test_policies_agree_on_heterogeneous_partitions(seed):
    """Per-device exit settings flow through ``partition_for`` identically."""
    system, state, arrivals, ratios = _instance(seed, heterogeneous=True)
    np.testing.assert_allclose(
        dpp_decide(system, state, arrivals, v=50.0),
        DriftPlusPenaltyPolicy(v=50.0).decide(system, state, arrivals),
        rtol=TOL,
        atol=TOL,
        err_msg=f"seed {seed}",
    )
    params = FleetParams.from_system(system)
    batch = slot_cost_batch(
        params,
        system,
        np.array(ratios),
        np.array(arrivals),
        np.array(state.queue_local),
        np.array(state.queue_edge),
    )
    want = [c.total_time for c in _scalar_costs(system, state, ratios, arrivals)]
    np.testing.assert_allclose(
        batch.total_time, want, rtol=TOL, atol=TOL, err_msg=f"seed {seed}"
    )


@pytest.mark.parametrize("seed", range(0, 20))
def test_vectorized_policy_flag_is_a_drop_in(seed):
    """``DriftPlusPenaltyPolicy(vectorized=True)`` returns the scalar answer."""
    system, state, arrivals, _ = _instance(seed)
    scalar = DriftPlusPenaltyPolicy(v=25.0).decide(system, state, arrivals)
    fast = DriftPlusPenaltyPolicy(v=25.0, vectorized=True).decide(
        system, state, arrivals
    )
    np.testing.assert_allclose(fast, scalar, rtol=TOL, atol=TOL)
    scalar_b = BalanceOffloadingPolicy().decide(system, state, arrivals)
    fast_b = BalanceOffloadingPolicy(vectorized=True).decide(
        system, state, arrivals
    )
    np.testing.assert_allclose(fast_b, scalar_b, rtol=TOL, atol=TOL)


# -- queue recursions and whole simulations ------------------------------------


@pytest.mark.parametrize("seed", range(0, 30))
def test_fleet_state_update_matches_lyapunov(seed):
    """Eqs. 10-11 advance identically through both state containers."""
    system, state, arrivals, ratios = _instance(seed)
    fleet = FleetState.from_lyapunov(state)
    engine = VectorizedSlotEngine(system)
    for step in range(5):
        step_arrivals = random_arrivals(seed + 100 + step, system.num_devices)
        costs = _scalar_costs(system, state, ratios, step_arrivals)
        for i, cost in enumerate(costs):
            state.update(i, cost)
        batch = engine.slot_costs(None, ratios, step_arrivals, fleet)
        fleet.update(batch)
        np.testing.assert_allclose(
            fleet.queue_local, state.queue_local, rtol=TOL, atol=TOL
        )
        np.testing.assert_allclose(
            fleet.queue_edge, state.queue_edge, rtol=TOL, atol=TOL
        )
    assert fleet.lyapunov_value() == pytest.approx(
        state.lyapunov_value(), rel=TOL
    )
    assert fleet.total_backlog() == pytest.approx(state.total_backlog(), rel=TOL)


@pytest.mark.parametrize("seed", range(0, 10))
@pytest.mark.parametrize("policy_name", ["dpp", "balance"])
def test_whole_simulation_matches_scalar(seed, policy_name):
    """Scalar and vectorized ``SlotSimulator`` runs produce the same records
    slot-for-slot (same seed → same arrivals/environment by construction)."""
    n = 3 + seed % 4
    system = random_fleet(seed, n, max_arrivals=1.0)
    arrivals = [
        PoissonArrivals(rate=d.mean_arrivals) for d in system.devices
    ]
    policy = (
        DriftPlusPenaltyPolicy(v=50.0)
        if policy_name == "dpp"
        else BalanceOffloadingPolicy()
    )

    def run(vectorized):
        sim = SlotSimulator(
            system=system,
            arrivals=arrivals,
            environment=RandomWalkEnvironment(sigma=0.1),
            seed=seed,
            vectorized=vectorized,
        )
        return sim.run(policy, 40)

    scalar, fast = run(False), run(True)
    for a, b in zip(scalar.records, fast.records):
        assert a.slot == b.slot
        assert b.arrivals == pytest.approx(a.arrivals, rel=TOL, abs=TOL)
        assert b.total_time == pytest.approx(a.total_time, rel=TOL, abs=TOL)
        np.testing.assert_allclose(b.ratios, a.ratios, rtol=TOL, atol=TOL)
        np.testing.assert_allclose(b.queue_local, a.queue_local, rtol=TOL, atol=TOL)
        np.testing.assert_allclose(b.queue_edge, a.queue_edge, rtol=TOL, atol=TOL)
    assert fast.mean_tct == pytest.approx(scalar.mean_tct, rel=TOL)


def test_engine_step_advances_like_simulator():
    """``VectorizedSlotEngine.step`` = decide + cost + queue update."""
    system, state, arrivals, _ = _instance(7)
    fleet = FleetState.from_lyapunov(state)
    engine = VectorizedSlotEngine(system)
    policy = DriftPlusPenaltyPolicy(v=50.0)
    ratios, cost = engine.step(policy, fleet, arrivals, arrivals)
    want_ratios = policy.decide(system, state, arrivals)
    np.testing.assert_allclose(ratios, want_ratios, rtol=TOL, atol=TOL)
    costs = _scalar_costs(system, state, want_ratios, arrivals)
    for i, c in enumerate(costs):
        state.update(i, c)
    np.testing.assert_allclose(fleet.queue_local, state.queue_local, rtol=TOL)
    np.testing.assert_allclose(fleet.queue_edge, state.queue_edge, rtol=TOL)
    assert cost.total_time.shape == (system.num_devices,)

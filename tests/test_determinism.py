"""Seeded determinism: same seed → same run, different seed → different run.

The simulator promises full byte-identical reproducibility; the threaded
runtime promises it for the *control plane* (arrival counts, task placement
and offload decisions), since worker-thread timing is wall-clock and races
by design — see :class:`repro.runtime.system.LeimeRuntime`'s two-stream
RNG contract.
"""

from __future__ import annotations

import pytest

from repro.core.offloading import DriftPlusPenaltyPolicy, FixedRatioPolicy
from repro.runtime import LeimeRuntime
from repro.sim.arrivals import PoissonArrivals
from repro.sim.environment import RandomWalkEnvironment
from repro.sim.simulator import SlotSimulator

from tests.helpers import random_fleet


def _simulate(seed: int, vectorized: bool, system):
    sim = SlotSimulator(
        system=system,
        arrivals=[PoissonArrivals(0.5)] * system.num_devices,
        environment=RandomWalkEnvironment(sigma=0.1),
        seed=seed,
        vectorized=vectorized,
    )
    return sim.run(DriftPlusPenaltyPolicy(v=50.0, vectorized=vectorized), 30)


@pytest.mark.parametrize("vectorized", [False, True])
def test_slot_simulator_same_seed_is_byte_identical(vectorized):
    system = random_fleet(11, 4)
    a = _simulate(7, vectorized, system)
    b = _simulate(7, vectorized, system)
    # Dataclass equality compares every float of every record exactly —
    # byte-identical runs, not approximately-equal runs.
    assert a.records == b.records


@pytest.mark.parametrize("vectorized", [False, True])
def test_slot_simulator_different_seeds_differ(vectorized):
    system = random_fleet(11, 4)
    a = _simulate(7, vectorized, system)
    b = _simulate(8, vectorized, system)
    assert a.records != b.records


def test_slot_simulator_paths_are_byte_identical():
    """Scalar and vectorized runs of the same seed produce *equal* record
    tuples — not just 1e-9-close (the engine mirrors the scalar arithmetic
    operation-for-operation, including accumulation order)."""
    system = random_fleet(11, 4)
    assert _simulate(7, False, system).records == _simulate(7, True, system).records


def _control_plane(report):
    """The discrete decisions the controller made, in creation order.

    Timestamps are wall-clock (the virtual clock maps real time), so only
    the discrete fields are reproducible across runs.
    """
    return [(t.task_id, t.device, t.offloaded) for t in report.tasks]


def _run_runtime(seed: int, system, vectorized: bool = False):
    runtime = LeimeRuntime(
        system,
        FixedRatioPolicy(0.5),
        speedup=500.0,
        seed=seed,
        vectorized=vectorized,
    )
    try:
        return runtime.run(
            [PoissonArrivals(1.0)] * system.num_devices,
            num_slots=8,
            drain_timeout=30.0,
        )
    finally:
        runtime.shutdown()


def test_runtime_same_seed_same_control_plane(small_system):
    a = _run_runtime(5, small_system)
    b = _run_runtime(5, small_system)
    assert len(a.tasks) == len(b.tasks) > 0
    assert _control_plane(a) == _control_plane(b)


def test_runtime_different_seeds_differ(small_system):
    a = _run_runtime(5, small_system)
    b = _run_runtime(6, small_system)
    assert _control_plane(a) != _control_plane(b)


def test_runtime_vectorized_flag_keeps_control_plane(small_system):
    """Swapping in the batched policy must not consume different RNG draws."""
    a = _run_runtime(5, small_system, vectorized=False)
    b = _run_runtime(5, small_system, vectorized=True)
    assert _control_plane(a) == _control_plane(b)


# -- fault-plan replay ----------------------------------------------------------


def _fault_replay(seed: int, vectorized: bool, system, plan):
    from repro.resilience import FaultyEnvironment, RecoveryPolicy, ResilientPolicy

    sim = SlotSimulator(
        system=system,
        arrivals=[PoissonArrivals(0.4)] * system.num_devices,
        environment=FaultyEnvironment(plan),
        seed=seed,
        vectorized=vectorized,
    )
    policy = ResilientPolicy(
        DriftPlusPenaltyPolicy(v=50.0, vectorized=vectorized),
        plan,
        RecoveryPolicy.default(),
    )
    return sim.run(policy, plan.num_slots)


def test_fault_plan_generation_is_seed_deterministic():
    from repro.resilience import FaultPlanSpec, generate_fault_plan, plans_equal

    spec = FaultPlanSpec(num_slots=50, num_devices=4, drop_prob=0.1)
    assert plans_equal(generate_fault_plan(spec, seed=3), generate_fault_plan(spec, seed=3))
    assert not plans_equal(
        generate_fault_plan(spec, seed=3), generate_fault_plan(spec, seed=4)
    )


def test_fault_replay_same_seed_is_byte_identical():
    from repro.resilience import canonical_outage_plan

    system = random_fleet(11, 4)
    plan = canonical_outage_plan(num_slots=40, num_devices=4, seed=0)
    a = _fault_replay(7, False, system, plan)
    b = _fault_replay(7, False, system, plan)
    assert a.records == b.records


def test_fault_replay_paths_are_byte_identical():
    """The resilient wrapper and the fault overlay add no randomness and
    no path-dependent arithmetic: scalar and vectorized replays of the
    same plan produce *equal* record tuples."""
    from repro.resilience import canonical_outage_plan

    system = random_fleet(11, 4)
    plan = canonical_outage_plan(num_slots=40, num_devices=4, seed=0)
    assert (
        _fault_replay(7, False, system, plan).records
        == _fault_replay(7, True, system, plan).records
    )


def test_runtime_fault_replay_same_seed_same_control_plane(small_system):
    from repro.resilience import RecoveryPolicy, canonical_outage_plan

    plan = canonical_outage_plan(num_slots=8, num_devices=2, seed=0)

    def run(seed):
        runtime = LeimeRuntime(
            small_system, FixedRatioPolicy(0.5), speedup=500.0, seed=seed
        )
        try:
            return runtime.run(
                [PoissonArrivals(1.0)] * 2,
                num_slots=8,
                drain_timeout=30.0,
                faults=plan,
                recovery=RecoveryPolicy.default(),
            )
        finally:
            runtime.shutdown()

    assert _control_plane(run(5)) == _control_plane(run(5))

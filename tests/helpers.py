"""Shared factories for the test suite (and ``bench_fleet_scale.py``).

Centralises the device/system construction that several test modules used
to copy-paste, plus the randomized-instance factories the differential and
property harnesses sweep over:

* :func:`make_device` / :func:`make_system` — the canonical 2-Pi fixture
  pieces (previously duplicated in ``test_offloading.py`` and
  ``conftest.py``);
* :func:`random_fleet` — a seeded random :class:`EdgeSystem` of ``n``
  devices drawn from the paper's "wild" ranges (§II-A: 1-30 Mbps,
  10-200 ms), optionally heterogeneous;
* :func:`random_environment` — a seeded random
  :class:`AverageEnvironment` for exit-setting property tests;
* :func:`random_queue_state` — a seeded random Lyapunov backlog vector.

Every factory is deterministic in its ``seed`` so failures reproduce from
the seed alone.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.exit_setting import AverageEnvironment
from repro.core.offloading import DeviceConfig, EdgeSystem, LyapunovState
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    NetworkProfile,
    RASPBERRY_PI_3B,
)
from repro.models.multi_exit import MultiExitDNN, PartitionedModel
from repro.models.exit_rates import ParametricExitCurve
from repro.models.zoo import build_model
from repro.units import mbps, ms


@lru_cache(maxsize=None)
def inception_partition(first: int = 5, second: int = 14) -> PartitionedModel:
    """The suite's workhorse partition: Inception v3 cut at (5, 14)."""
    return MultiExitDNN(build_model("inception-v3")).partition_at(first, second)


def make_device(
    bandwidth_mbps: float = 10.0,
    latency_ms: float = 20.0,
    arrivals: float = 0.5,
    flops: float = RASPBERRY_PI_3B.flops,
    name: str = "pi",
    overhead: float = RASPBERRY_PI_3B.per_task_overhead,
) -> DeviceConfig:
    """One Raspberry-Pi-class device on a configurable WiFi hop."""
    return DeviceConfig(
        name=name,
        flops=flops,
        link=NetworkProfile(mbps(bandwidth_mbps), ms(latency_ms)),
        mean_arrivals=arrivals,
        overhead=overhead,
    )


def make_system(
    partition: PartitionedModel | None = None,
    devices: tuple[DeviceConfig, ...] | None = None,
    **overrides,
) -> EdgeSystem:
    """The canonical small test system: 2 Pis behind an i7 edge and a V100
    cloud; any :class:`EdgeSystem` field can be overridden."""
    if partition is None:
        partition = inception_partition()
    if devices is None:
        devices = (make_device(name="pi-0"), make_device(name="pi-1"))
    settings = dict(
        devices=tuple(devices),
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=partition,
    )
    settings.update(overrides)
    return EdgeSystem(**settings)


def random_fleet(
    seed: int,
    n: int,
    heterogeneous: bool = False,
    max_arrivals: float = 2.0,
) -> EdgeSystem:
    """A seeded random fleet of ``n`` devices in the paper's wild ranges.

    Device throughput spans Pi-class to Jetson-class (0.5-10× a Pi), links
    draw from 1-30 Mbps / 10-200 ms, per-slot arrival means from
    ``[0.1, max_arrivals]``.  ``heterogeneous=True`` additionally gives
    each device its own exit triple of the shared backbone.
    """
    rng = np.random.default_rng(seed)
    devices = tuple(
        DeviceConfig(
            name=f"dev-{i}",
            flops=RASPBERRY_PI_3B.flops * float(rng.uniform(0.5, 10.0)),
            link=NetworkProfile(
                mbps(float(rng.uniform(1.0, 30.0))),
                ms(float(rng.uniform(10.0, 200.0))),
            ),
            mean_arrivals=float(rng.uniform(0.1, max_arrivals)),
            overhead=float(rng.uniform(0.0, 0.1)),
        )
        for i in range(n)
    )
    device_partitions: tuple[PartitionedModel, ...] = ()
    if heterogeneous:
        me_dnn = MultiExitDNN(build_model("inception-v3"))
        m = me_dnn.num_exits
        cuts = []
        for _ in range(n):
            first = int(rng.integers(1, m - 2))
            second = int(rng.integers(first + 1, m))
            cuts.append(me_dnn.partition_at(first, second))
        device_partitions = tuple(cuts)
    return EdgeSystem(
        devices=devices,
        edge_flops=EDGE_I7_3770.flops * float(rng.uniform(0.5, 2.0)),
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=inception_partition(),
        device_partitions=device_partitions,
    )


def random_federation_topology(
    seed: int,
    num_edges: int,
    n: int,
    max_arrivals: float = 2.0,
):
    """A seeded random federation of ``num_edges`` sites over ``n``
    devices on the suite's workhorse partition (wild ranges as
    :func:`random_fleet`)."""
    from repro.federation import random_federation

    return random_federation(
        seed=seed,
        num_edges=num_edges,
        num_devices=n,
        partition=inception_partition(),
        max_arrivals=max_arrivals,
    )


def static_home_plan(topology, num_slots: int):
    """The static nearest-home assignment plan (no spill/churn/failover)."""
    from repro.federation import build_assignment_plan

    return build_assignment_plan(topology, num_slots)


def single_edge_fixture(seed: int, n: int, num_slots: int):
    """The E=1 conformance fixture: a random fleet, its federation
    wrapper, and the static single-edge plan, as
    ``(system, topology, plan)``."""
    from repro.federation import build_assignment_plan, single_edge_topology

    system = random_fleet(seed, n)
    topology = single_edge_topology(system)
    plan = build_assignment_plan(topology, num_slots)
    return system, topology, plan


def random_environment(seed: int) -> AverageEnvironment:
    """A seeded random average-conditions row (the Table I quantities)."""
    rng = np.random.default_rng(seed)
    return AverageEnvironment(
        device_flops=RASPBERRY_PI_3B.flops * float(rng.uniform(0.3, 12.0)),
        edge_flops=EDGE_I7_3770.flops * float(rng.uniform(0.1, 1.0)),
        cloud_flops=CLOUD_V100.flops * float(rng.uniform(0.5, 2.0)),
        device_edge=NetworkProfile(
            mbps(float(rng.uniform(1.0, 30.0))),
            ms(float(rng.uniform(10.0, 200.0))),
        ),
        edge_cloud=NetworkProfile(
            mbps(float(rng.uniform(5.0, 100.0))),
            ms(float(rng.uniform(10.0, 100.0))),
        ),
        device_overhead=float(rng.uniform(0.0, 0.1)),
        edge_overhead=float(rng.uniform(0.0, 0.02)),
        cloud_overhead=float(rng.uniform(0.0, 0.01)),
    )


def random_exit_curve(seed: int) -> ParametricExitCurve:
    """A seeded random exit-rate curve."""
    rng = np.random.default_rng(seed)
    return ParametricExitCurve.from_complexity(float(rng.uniform(0.05, 0.95)))


def random_queue_state(seed: int, n: int, scale: float = 10.0) -> LyapunovState:
    """A seeded random backlog vector ``Θ = [Q, H]``."""
    rng = np.random.default_rng(seed)
    return LyapunovState(
        queue_local=[float(v) for v in rng.uniform(0.0, scale, n)],
        queue_edge=[float(v) for v in rng.uniform(0.0, scale, n)],
    )


def random_arrivals(seed: int, n: int, high: float = 3.0) -> list[float]:
    """Seeded random per-device arrival counts for one slot."""
    rng = np.random.default_rng(seed)
    return [float(v) for v in rng.uniform(0.0, high, n)]

"""Backhaul as a latency term in the federated event paths.

An :class:`~repro.federation.topology.EdgeSite` may charge a
``backhaul_latency``: extra one-way propagation a device homed at a
*different* site pays on every device↔edge transfer to this edge.  The
term rides on the member's link profile inside the shard, so both event
engines price it through the ordinary transfer-time machinery — which is
what the scalar-vs-fast conformance case pins.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.offloading import FixedRatioPolicy
from repro.federation import AssignmentPlan, FederatedEventSimulator
from repro.sim.arrivals import PoissonArrivals

from .helpers import random_federation_topology

NUM_SLOTS = 8
BACKHAUL_S = 0.25


def _backhaul_world(seed: int, backhaul: float):
    """A 2-edge federation where every device is pinned to edge 0, so
    devices homed at edge 1 are migrated members paying edge 0's
    backhaul."""
    topology = random_federation_topology(seed, 2, 4)
    topology = replace(
        topology,
        sites=(
            replace(topology.sites[0], backhaul_latency=backhaul),
            topology.sites[1],
        ),
    )
    plan = AssignmentPlan(
        matrix=np.zeros((NUM_SLOTS, topology.num_devices), dtype=np.intp),
        num_edges=2,
    )
    arrivals = [PoissonArrivals(0.6) for _ in range(topology.num_devices)]
    return topology, plan, arrivals


@pytest.mark.parametrize("seed", range(3))
def test_zero_backhaul_preserves_shard_identity(seed: int) -> None:
    """With the default zero latency, passing homes must not perturb the
    shard — the E=1 identity contract stays intact."""
    topology, _, _ = _backhaul_world(seed, 0.0)
    members = list(range(topology.num_devices))
    homes = topology.home_assignment()
    assert topology.build_shard(0, members, homes) == topology.build_shard(
        0, members
    )


@pytest.mark.parametrize("seed", range(3))
def test_backhaul_applies_only_to_non_home_members(seed: int) -> None:
    topology, _, _ = _backhaul_world(seed, BACKHAUL_S)
    members = list(range(topology.num_devices))
    homes = topology.home_assignment()
    assert any(h != 0 for h in homes), "fixture needs a migrated member"
    plain = topology.build_shard(0, members)
    shard = topology.build_shard(0, members, homes)
    for i, (before, after) in enumerate(zip(plain.devices, shard.devices)):
        assert after.link.bandwidth == before.link.bandwidth
        if homes[i] == 0:
            assert after.link.latency == before.link.latency
        else:
            assert after.link.latency == pytest.approx(
                before.link.latency + BACKHAUL_S
            )


@pytest.mark.parametrize("seed", range(3))
def test_backhaul_scalar_vs_fast_conformance(seed: int) -> None:
    """The backhaul term must not open a gap between the event engines:
    per-task results stay exactly equal."""
    topology, plan, arrivals = _backhaul_world(seed, BACKHAUL_S)
    results = {}
    for engine in ("scalar", "fast"):
        results[engine] = (
            FederatedEventSimulator(
                topology=topology, arrivals=arrivals, plan=plan, seed=seed
            )
            .run(
                FixedRatioPolicy(0.5),
                NUM_SLOTS,
                drain_limit_factor=100.0,
                engine=engine,
            )
            .merged()
        )
    a, b = results["scalar"].tasks, results["fast"].tasks
    assert len(a) == len(b)
    for ta, tb in zip(a, b):
        assert ta.device == tb.device
        assert ta.created == tb.created
        assert ta.completed == tb.completed
        assert ta.exit_tier == tb.exit_tier
        assert ta.retries == tb.retries
        assert ta.dropped == tb.dropped


@pytest.mark.parametrize("engine", ["scalar", "fast"])
def test_backhaul_slows_migrated_members_only(engine: str) -> None:
    """Adding backhaul strictly increases completion times for migrated
    members' offloaded tasks and changes nothing for home members."""
    seed = 0
    base_t, plan, arrivals = _backhaul_world(seed, 0.0)
    slow_t, _, _ = _backhaul_world(seed, BACKHAUL_S)
    homes = base_t.home_assignment()

    def tct_by_home(topology):
        merged = (
            FederatedEventSimulator(
                topology=topology, arrivals=arrivals, plan=plan, seed=seed
            )
            .run(
                FixedRatioPolicy(0.5),
                NUM_SLOTS,
                drain_limit_factor=100.0,
                engine=engine,
            )
            .merged()
        )
        home = [
            t.completed - t.created
            for t in merged.completed
            if homes[t.device] == 0
        ]
        away = [
            t.completed - t.created
            for t in merged.completed
            if homes[t.device] != 0 and t.offloaded
        ]
        return home, away

    home_base, away_base = tct_by_home(base_t)
    home_slow, away_slow = tct_by_home(slow_t)
    assert away_base, "fixture needs offloaded tasks on migrated members"
    assert home_slow == home_base
    assert sum(away_slow) > sum(away_base)

"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_models_lists_zoo(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for name in ("vgg-16", "resnet-34", "inception-v3", "squeezenet-1.0"):
        assert name in out


def test_describe(capsys):
    assert main(["describe", "squeezenet-1.0"]) == 0
    out = capsys.readouterr().out
    assert "fire2" in out and "GFLOPs" in out


def test_describe_rejects_unknown_model():
    with pytest.raises(SystemExit):
        main(["describe", "alexnet"])


def test_plan_prints_selection(capsys):
    assert main(["plan", "--model", "squeezenet-1.0"]) == 0
    out = capsys.readouterr().out
    assert "exit selection" in out
    assert "expected TCT" in out


def test_plan_device_changes_selection(capsys):
    main(["plan", "--model", "inception-v3", "--device", "raspberry-pi"])
    pi_out = capsys.readouterr().out
    main(["plan", "--model", "inception-v3", "--device", "jetson-nano"])
    nano_out = capsys.readouterr().out
    assert pi_out != nano_out


def test_simulate_slot(capsys):
    assert (
        main(
            [
                "simulate",
                "--model",
                "squeezenet-1.0",
                "--policy",
                "leime",
                "--slots",
                "30",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "mean TCT" in out and "stable" in out


def test_simulate_event(capsys):
    assert (
        main(
            [
                "simulate",
                "--model",
                "squeezenet-1.0",
                "--policy",
                "edge-only",
                "--simulator",
                "event",
                "--slots",
                "30",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "offloaded" in out and "exits" in out


def test_simulate_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["simulate", "--policy", "magic"])


def test_experiment_dispatch(capsys):
    assert main(["experiment", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2(a)" in out


def test_experiment_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_trace_generate_describe_replay(tmp_path, capsys):
    """The full trace pipeline through the CLI: synthesise, inspect,
    replay, and export the benchmark summary."""
    trace_path = tmp_path / "wild.npz"
    summary_path = tmp_path / "out.json"
    assert (
        main(
            [
                "trace",
                "generate",
                "--output",
                str(trace_path),
                "--slots",
                "24",
                "--devices",
                "2",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert trace_path.exists()
    assert "24 slots" in out

    assert main(["trace", "describe", str(trace_path)]) == 0
    out = capsys.readouterr().out
    for channel in ("bandwidth", "arrival_rate", "up"):
        assert channel in out

    assert (
        main(
            [
                "trace",
                "replay",
                str(trace_path),
                "--model",
                "squeezenet-1.0",
                "--policy",
                "leime",
                "--output",
                str(summary_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "byte-identical" in out

    import json

    payload = json.loads(summary_path.read_text())
    assert payload["paths_identical"] is True
    assert payload["slots"] == 24


def test_trace_generate_presets_differ(tmp_path, capsys):
    paths = {}
    for preset in ("diurnal", "flash-crowd"):
        path = tmp_path / f"{preset}.jsonl"
        assert (
            main(
                [
                    "trace",
                    "generate",
                    "--output",
                    str(path),
                    "--preset",
                    preset,
                    "--slots",
                    "20",
                    "--devices",
                    "2",
                ]
            )
            == 0
        )
        paths[preset] = path
    capsys.readouterr()
    assert (
        paths["diurnal"].read_text() != paths["flash-crowd"].read_text()
    )


def test_trace_describe_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["trace", "describe", str(tmp_path / "nope.npz")])


def test_trace_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["trace"])


def test_experiment_fig_wild_listed():
    from repro.cli import EXPERIMENTS

    assert "fig_wild" in EXPERIMENTS


def test_analyze_vsweep(capsys):
    assert (
        main(
            [
                "analyze",
                "v-sweep",
                "--model",
                "squeezenet-1.0",
                "--devices",
                "2",
                "--arrival-rate",
                "0.5",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "mean TCT" in out and "backlog" in out


def test_faults_generate_describe_replay(tmp_path, capsys):
    """The full chaos pipeline through the CLI: synthesise a plan,
    inspect it, replay it through both simulators, export the summary."""
    plan_path = tmp_path / "faults.npz"
    summary_path = tmp_path / "out.json"
    assert (
        main(
            [
                "faults",
                "generate",
                "--output",
                str(plan_path),
                "--preset",
                "canonical-outage",
                "--slots",
                "40",
                "--devices",
                "2",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert plan_path.exists()
    assert "40 slots" in out and "1 edge outage" in out

    assert main(["faults", "describe", str(plan_path)]) == 0
    out = capsys.readouterr().out
    for field in ("drop_fraction", "edge_outages", "edge outages"):
        assert field in out

    assert (
        main(
            [
                "faults",
                "replay",
                str(plan_path),
                "--model",
                "squeezenet-1.0",
                "--policy",
                "leime",
                "--arrival-rate",
                "0.3",
                "--output",
                str(summary_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "byte-identical" in out
    assert "recovery" in out and "no-recovery" in out

    import json

    payload = json.loads(summary_path.read_text())
    assert payload["paths_identical"] is True
    assert payload["slots"] == 40
    recovery = payload["results"]["recovery"]
    assert recovery["tasks"] == (
        recovery["completed"] + recovery["dropped"] + recovery["in_flight"]
    )


def test_faults_generate_seeds_differ(tmp_path, capsys):
    blobs = {}
    for seed in ("0", "1"):
        path = tmp_path / f"plan-{seed}.jsonl"
        assert (
            main(
                [
                    "faults",
                    "generate",
                    "--output",
                    str(path),
                    "--slots",
                    "30",
                    "--devices",
                    "2",
                    "--seed",
                    seed,
                    "--drop-prob",
                    "0.1",
                ]
            )
            == 0
        )
        blobs[seed] = path.read_text()
    capsys.readouterr()
    assert blobs["0"] != blobs["1"]


def test_faults_describe_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["faults", "describe", str(tmp_path / "nope.npz")])


def test_faults_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["faults"])


def test_experiment_fig_faults_listed():
    from repro.cli import EXPERIMENTS

    assert "fig_faults" in EXPERIMENTS

"""Appendix B edge-share allocation: KKT optimality and feasibility."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.resource_allocation import (
    kkt_edge_allocation,
    mean_processing_time,
    proportional_allocation,
    uniform_allocation,
)
from repro.units import gflops


def test_interior_solution_matches_eq27():
    """With homogeneous devices Eq. 27 reduces to shares ∝ √k_i."""
    device_flops = [gflops(4)] * 3
    rates = [1.0, 4.0, 9.0]
    shares = kkt_edge_allocation(device_flops, rates, gflops(60))
    # √k = 1, 2, 3 → relative edge help grows in that order after the
    # -F_d/F_e offset, which is equal across devices here.
    sqrt_k = [1.0, 2.0, 3.0]
    diffs = [s + device_flops[i] / gflops(60) for i, s in enumerate(shares)]
    assert diffs[1] / diffs[0] == pytest.approx(sqrt_k[1] / sqrt_k[0], rel=1e-6)
    assert diffs[2] / diffs[0] == pytest.approx(sqrt_k[2] / sqrt_k[0], rel=1e-6)


def test_shares_sum_to_one_and_nonnegative():
    shares = kkt_edge_allocation(
        [gflops(3.6), gflops(30), gflops(3.6)], [2.0, 0.5, 1.0], gflops(60)
    )
    assert sum(shares) == pytest.approx(1.0)
    assert all(s >= 0 for s in shares)


def test_fast_idle_device_gets_pinned_to_zero():
    """A very fast device with few tasks would get a negative Eq. 27 share;
    the active-set step must pin it to zero instead."""
    shares = kkt_edge_allocation(
        [gflops(1000), gflops(1)], [0.01, 10.0], gflops(10)
    )
    assert shares[0] == pytest.approx(0.0, abs=1e-9)
    assert shares[1] == pytest.approx(1.0)


def test_zero_demand_devices_can_get_zero():
    shares = kkt_edge_allocation([gflops(4), gflops(4)], [0.0, 3.0], gflops(60))
    assert shares[0] == 0.0
    assert shares[1] == pytest.approx(1.0)


def test_all_zero_demand_falls_back_to_uniform():
    shares = kkt_edge_allocation([gflops(4)] * 4, [0.0] * 4, gflops(60))
    assert shares == [0.25] * 4


def test_validation():
    with pytest.raises(ValueError):
        kkt_edge_allocation([], [], gflops(60))
    with pytest.raises(ValueError):
        kkt_edge_allocation([gflops(1)], [1.0, 2.0], gflops(60))
    with pytest.raises(ValueError):
        kkt_edge_allocation([gflops(1)], [1.0], 0.0)
    with pytest.raises(ValueError):
        kkt_edge_allocation([0.0], [1.0], gflops(60))
    with pytest.raises(ValueError):
        kkt_edge_allocation([gflops(1)], [-1.0], gflops(60))


def test_proportional_and_uniform_baselines():
    device_flops = [gflops(4)] * 3
    rates = [1.0, 2.0, 1.0]
    prop = proportional_allocation(device_flops, rates, gflops(60))
    assert prop == pytest.approx([0.25, 0.5, 0.25])
    uni = uniform_allocation(device_flops, rates, gflops(60))
    assert uni == pytest.approx([1 / 3] * 3)
    assert proportional_allocation(device_flops, [0.0] * 3, gflops(60)) == (
        pytest.approx([1 / 3] * 3)
    )


def test_mean_processing_time_zero_demand():
    assert (
        mean_processing_time([1.0], [gflops(1)], [0.0], gflops(10), 1e9) == 0.0
    )


def test_mean_processing_time_length_check():
    with pytest.raises(ValueError):
        mean_processing_time([0.5], [gflops(1), gflops(2)], [1.0, 1.0], gflops(10), 1e9)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_kkt_beats_uniform_and_proportional(n, data):
    """The KKT allocation minimises Eq. 26, so it can never lose to the
    baseline allocations on the same instance."""
    device_flops = [
        data.draw(st.floats(min_value=gflops(0.5), max_value=gflops(50)))
        for _ in range(n)
    ]
    rates = [
        data.draw(st.floats(min_value=0.1, max_value=20.0)) for _ in range(n)
    ]
    edge = data.draw(st.floats(min_value=gflops(5), max_value=gflops(500)))
    work = 2e9
    kkt = kkt_edge_allocation(device_flops, rates, edge)
    assert sum(kkt) == pytest.approx(1.0, abs=1e-6)
    assert all(s >= -1e-9 for s in kkt)
    objective_kkt = mean_processing_time(kkt, device_flops, rates, edge, work)
    for baseline in (uniform_allocation, proportional_allocation):
        shares = baseline(device_flops, rates, edge)
        objective_base = mean_processing_time(
            shares, device_flops, rates, edge, work
        )
        assert objective_kkt <= objective_base + 1e-9

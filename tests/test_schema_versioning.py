"""Schema version stamps: traces, fault plans, and the strict replay gate.

Serialized artefacts carry an explicit ``schema_version``; a reader
facing a version it does not understand must fail loudly, never
misparse.  Legacy files written before the stamp existed (``version``
key only) still load.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chaos.oracles import event_conservation, fluid_conservation
from repro.cli import build_parser
from repro.resilience.faults import (
    FAULT_PLAN_SCHEMA_VERSION,
    FaultPlanError,
    FaultPlanSpec,
    generate_fault_plan,
    load_fault_plan,
    plans_equal,
    save_fault_plan,
)
from repro.traces.generators import WildTraceSpec, generate_trace
from repro.traces.serialize import (
    FORMAT_VERSION,
    TraceValidationError,
    load_trace,
    save_trace,
    traces_equal,
)


def _trace(seed=0):
    return generate_trace(
        WildTraceSpec(num_slots=12, num_devices=2), seed=seed
    )


# -- trace headers -----------------------------------------------------------


@pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
def test_trace_headers_carry_schema_version(tmp_path, suffix):
    path = save_trace(_trace(), tmp_path / f"t{suffix}")
    if suffix == ".jsonl":
        header = json.loads(path.read_text().splitlines()[0])
    else:
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["header"]))
    assert header["schema_version"] == FORMAT_VERSION
    assert header["version"] == FORMAT_VERSION
    assert traces_equal(load_trace(path), _trace())


def test_jsonl_schema_mismatch_is_loud(tmp_path):
    path = save_trace(_trace(), tmp_path / "t.jsonl")
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["schema_version"] = 99
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(TraceValidationError, match="refusing to misparse"):
        load_trace(path)


def test_npz_schema_mismatch_is_loud(tmp_path):
    path = save_trace(_trace(), tmp_path / "t.npz")
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        arrays = {k: archive[k] for k in archive.files if k != "header"}
    header["schema_version"] = 0
    np.savez_compressed(path, header=np.array(json.dumps(header)), **arrays)
    with pytest.raises(TraceValidationError, match="refusing to misparse"):
        load_trace(path)


def test_legacy_header_without_schema_version_loads(tmp_path):
    """Files from before the ``schema_version`` alias carry only
    ``version`` — they must keep loading."""
    path = save_trace(_trace(), tmp_path / "t.jsonl")
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    del header["schema_version"]
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    assert traces_equal(load_trace(path), _trace())


# -- fault plans -------------------------------------------------------------


@pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
def test_fault_plan_round_trip_with_stamp(tmp_path, suffix):
    plan = generate_fault_plan(
        FaultPlanSpec(num_slots=16, num_devices=3), seed=4
    )
    path = save_fault_plan(plan, tmp_path / f"p{suffix}")
    loaded = load_fault_plan(path)
    assert plans_equal(plan, loaded)
    # The stamp lives in the file, not in the loaded plan's meta.
    assert "fault_plan_schema_version" not in loaded.meta
    assert loaded.meta.get("seed") == plan.meta.get("seed")


def test_fault_plan_stamp_is_written(tmp_path):
    plan = generate_fault_plan(
        FaultPlanSpec(num_slots=8, num_devices=2), seed=0
    )
    path = save_fault_plan(plan, tmp_path / "p.jsonl")
    header = json.loads(path.read_text().splitlines()[0])
    assert (
        header["meta"]["fault_plan_schema_version"]
        == FAULT_PLAN_SCHEMA_VERSION
    )


def test_fault_plan_schema_mismatch_is_loud(tmp_path):
    plan = generate_fault_plan(
        FaultPlanSpec(num_slots=8, num_devices=2), seed=0
    )
    path = save_fault_plan(plan, tmp_path / "p.jsonl")
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["meta"]["fault_plan_schema_version"] = 99
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(FaultPlanError, match="refusing to misparse"):
        load_fault_plan(path)


def test_fault_plan_without_stamp_is_legacy_ok(tmp_path):
    plan = generate_fault_plan(
        FaultPlanSpec(num_slots=8, num_devices=2), seed=0
    )
    path = save_fault_plan(plan, tmp_path / "p.jsonl")
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    del header["meta"]["fault_plan_schema_version"]
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    assert plans_equal(plan, load_fault_plan(path))


# -- the strict replay gate --------------------------------------------------


def test_replay_verbs_default_to_strict():
    parser = build_parser()
    trace_args = parser.parse_args(["trace", "replay", "t.jsonl"])
    assert trace_args.strict is True
    faults_args = parser.parse_args(
        ["faults", "replay", "--no-strict", "p.npz"]
    )
    assert faults_args.strict is False
    chaos_args = parser.parse_args(["chaos", "run"])
    assert chaos_args.strict is True


def test_conservation_oracles_flag_fabricated_violations():
    class FakeEvent:
        tasks = (1, 2, 3)
        completed = (1,)
        dropped_count = 0
        shed_count = 0
        in_flight_count = 1

    violations = event_conservation(FakeEvent())
    assert len(violations) == 1 and "generated 3" in violations[0]

    class FakeRecord:
        slot = 0
        arrivals = 2.0
        shed = 0.0

    class FakeFluid:
        total_generated = 5.0
        total_arrivals = 2.0
        total_shed = 0.0
        records = (FakeRecord(),)

    violations = fluid_conservation(FakeFluid())
    assert len(violations) == 1 and "fluid conservation" in violations[0]

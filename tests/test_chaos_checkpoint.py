"""Kill-at-slot-k + restore ≡ uninterrupted run, on all five paths.

The acceptance harness for the chaos checkpoint layer: for ≥25 seeded
fleets × ≥3 kill points, a run killed at a checkpoint boundary and
resumed from the (bytes-round-tripped) checkpoint must reproduce the
uninterrupted run's records byte-for-byte (fluid paths), per task record
(event paths), or per control-plane record (live runtime, whose
wall-clock timing fields are inherently racy).

Also pins the checkpoint container itself: file round-trip, loud schema
errors, and the hook-validation seams.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaos import (
    CheckpointError,
    CheckpointLog,
    Killed,
    KillSwitch,
    checkpoint_from_bytes,
    checkpoint_to_bytes,
    load_checkpoint,
    save_checkpoint,
    snapshot,
)
from repro.chaos.checkpoint import validate_hooks
from repro.core.offloading import DriftPlusPenaltyPolicy
from repro.resilience.faults import canonical_outage_plan
from repro.resilience.overload import OverloadControl
from repro.resilience.recovery import RecoveryPolicy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator

from .helpers import random_fleet, random_federation_topology, static_home_plan

SEEDS = range(25)
KILL_POINTS = (2, 5, 8)
SLOTS = 10
N = 3


def _arrivals(system):
    return [PoissonArrivals(d.mean_arrivals) for d in system.devices]


def _kill_and_resume(make_sim, run, kill_slot):
    """Run with a kill switch at ``kill_slot``, round-trip the checkpoint
    through bytes, and return the resumed result."""
    switch = KillSwitch(kill_slot)
    with pytest.raises(Killed) as killed:
        run(make_sim(), checkpoint_every=1, checkpoint_sink=switch)
    checkpoint = checkpoint_from_bytes(
        checkpoint_to_bytes(killed.value.checkpoint)
    )
    assert checkpoint.slot == kill_slot
    return run(make_sim(), resume_from=checkpoint)


# -- fluid paths (byte-identical records) -----------------------------------


@pytest.mark.parametrize("vectorized", [False, True])
def test_fluid_kill_resume_differential(vectorized):
    failures = []
    for seed in SEEDS:
        system = random_fleet(seed, N, max_arrivals=1.0)
        arrivals = _arrivals(system)
        overload = OverloadControl() if seed % 3 == 0 else None

        def make_sim():
            return SlotSimulator(
                system,
                arrivals,
                seed=seed,
                vectorized=vectorized,
                overload=overload,
            )

        def run(sim, **kwargs):
            return sim.run(
                DriftPlusPenaltyPolicy(v=50.0, vectorized=vectorized),
                SLOTS,
                **kwargs,
            )

        baseline = run(make_sim())
        for kill in KILL_POINTS:
            resumed = _kill_and_resume(make_sim, run, kill)
            if resumed.records != baseline.records:
                failures.append((seed, kill))
    assert not failures, f"fluid (vectorized={vectorized}) diverged: {failures}"


# -- event paths (per-task-record identical) --------------------------------


@pytest.mark.parametrize("engine", ["scalar", "fast"])
def test_event_kill_resume_differential(engine):
    failures = []
    for seed in SEEDS:
        system = random_fleet(seed, N, max_arrivals=1.0)
        arrivals = _arrivals(system)
        faults = canonical_outage_plan(SLOTS, N, seed) if seed % 3 == 1 else None
        overload = OverloadControl() if seed % 3 == 2 else None

        def make_sim():
            return EventSimulator(
                system,
                arrivals,
                seed=seed,
                faults=faults,
                recovery=RecoveryPolicy.default() if faults is not None else None,
                overload=overload,
            )

        def run(sim, **kwargs):
            return sim.run(
                DriftPlusPenaltyPolicy(v=50.0), SLOTS, engine=engine, **kwargs
            )

        baseline = run(make_sim())
        for kill in KILL_POINTS:
            resumed = _kill_and_resume(make_sim, run, kill)
            if resumed.tasks != baseline.tasks or (
                resumed.horizon != baseline.horizon
            ):
                failures.append((seed, kill))
    assert not failures, f"event ({engine}) diverged: {failures}"


# -- federated wrappers ------------------------------------------------------


@pytest.mark.parametrize("vectorized", [False, True])
def test_federated_fluid_kill_resume(vectorized):
    from repro.federation.fluid import FederatedSlotSimulator

    for seed in range(6):
        topology = random_federation_topology(seed, 3, 6, max_arrivals=1.0)
        plan = static_home_plan(topology, SLOTS)
        arrivals = [PoissonArrivals(d.mean_arrivals) for d in topology.devices]

        def make_sim():
            return FederatedSlotSimulator(
                topology=topology,
                arrivals=arrivals,
                plan=plan,
                seed=seed,
                vectorized=vectorized,
            )

        def run(sim, **kwargs):
            return sim.run(
                DriftPlusPenaltyPolicy(v=50.0, vectorized=vectorized),
                SLOTS,
                **kwargs,
            )

        baseline = run(make_sim())
        for kill in (2, 5, 8):
            resumed = _kill_and_resume(make_sim, run, kill)
            assert (
                resumed.global_result.records == baseline.global_result.records
            ), (vectorized, seed, kill)
            assert resumed.edge_records == baseline.edge_records


@pytest.mark.parametrize("engine", ["scalar", "fast"])
def test_federated_event_kill_resume_shard_granular(engine):
    from repro.federation.events import FederatedEventSimulator

    for seed in range(4):
        topology = random_federation_topology(seed, 3, 6, max_arrivals=1.0)
        plan = static_home_plan(topology, SLOTS)
        arrivals = [PoissonArrivals(d.mean_arrivals) for d in topology.devices]

        def make_sim():
            return FederatedEventSimulator(
                topology=topology, arrivals=arrivals, plan=plan, seed=seed
            )

        def run(sim, **kwargs):
            return sim.run(
                DriftPlusPenaltyPolicy(v=50.0), SLOTS, engine=engine, **kwargs
            )

        baseline = run(make_sim())
        for kill_edge in (1, 2):
            resumed = _kill_and_resume(make_sim, run, kill_edge)
            assert resumed.edge_members == baseline.edge_members
            for a, b in zip(resumed.edge_results, baseline.edge_results):
                assert a.tasks == b.tasks, (engine, seed, kill_edge)


# -- live runtime (control-plane record identical) ---------------------------


def test_runtime_kill_resume_control_plane():
    from repro.experiments.common import TestbedConfig, leime_scheme
    from repro.runtime import LeimeRuntime

    config = TestbedConfig(num_devices=2, arrival_rate=0.4)
    system = config.system(leime_scheme(config).partition)
    for seed in range(25):

        def fresh():
            return LeimeRuntime(
                system, DriftPlusPenaltyPolicy(v=50.0), speedup=2000.0, seed=seed
            )

        runtime = fresh()
        try:
            baseline = runtime.run(config.arrival_processes(), num_slots=6)
        finally:
            assert runtime.shutdown()
        control = [(t.device, t.offloaded, t.shed) for t in baseline.tasks]
        # One killed run yields the checkpoints for every kill point (the
        # switch retains earlier checkpoints, like a sink that survived
        # the crash on durable storage).
        switch = KillSwitch(4)
        killed_rt = fresh()
        try:
            with pytest.raises(Killed):
                killed_rt.run(
                    config.arrival_processes(),
                    num_slots=6,
                    checkpoint_every=1,
                    checkpoint_sink=switch,
                )
        finally:
            assert killed_rt.shutdown()
        by_slot = {ck.slot: ck for ck in switch.checkpoints}
        for kill in (2, 3, 4):
            checkpoint = checkpoint_from_bytes(
                checkpoint_to_bytes(by_slot[kill])
            )
            assert checkpoint.kind == "replay"
            resumed_rt = fresh()
            try:
                resumed = resumed_rt.run(
                    config.arrival_processes(), num_slots=6, resume_from=checkpoint
                )
            finally:
                assert resumed_rt.shutdown()
            assert [
                (t.device, t.offloaded, t.shed) for t in resumed.tasks
            ] == control, (seed, kill)


def test_runtime_resume_requires_fresh_instance():
    from repro.experiments.common import TestbedConfig, leime_scheme
    from repro.runtime import LeimeRuntime

    config = TestbedConfig(num_devices=2, arrival_rate=0.5)
    system = config.system(leime_scheme(config).partition)
    runtime = LeimeRuntime(
        system, DriftPlusPenaltyPolicy(v=50.0), speedup=2000.0, seed=0
    )
    try:
        with pytest.raises(Killed) as killed:
            runtime.run(
                config.arrival_processes(),
                num_slots=6,
                checkpoint_every=1,
                checkpoint_sink=KillSwitch(2),
            )
        with pytest.raises(CheckpointError, match="fresh runtime"):
            runtime.run(
                config.arrival_processes(),
                num_slots=6,
                resume_from=killed.value.checkpoint,
            )
    finally:
        assert runtime.shutdown()


# -- container contracts -----------------------------------------------------


def test_checkpoint_file_round_trip(tmp_path):
    ck = snapshot("fluid-scalar", "state", 7, "abc123", {"x": [1.0, 2.0]})
    path = save_checkpoint(ck, tmp_path / "run.ckpt")
    loaded = load_checkpoint(path)
    assert loaded == ck
    assert loaded.payload() == {"x": [1.0, 2.0]}
    # payload() hands out fresh copies — mutating one cannot corrupt the
    # checkpoint.
    loaded.payload()["x"].append(3.0)
    assert loaded.payload() == {"x": [1.0, 2.0]}


def test_checkpoint_schema_mismatch_is_loud(tmp_path):
    ck = snapshot("fluid-scalar", "state", 1, "abc", {})
    raw = checkpoint_to_bytes(dataclasses.replace(ck, schema_version=99))
    with pytest.raises(CheckpointError, match="schema"):
        checkpoint_from_bytes(raw)
    (tmp_path / "junk.ckpt").write_bytes(b'{"format": "something-else"}\n')
    with pytest.raises(CheckpointError, match="not a checkpoint"):
        load_checkpoint(tmp_path / "junk.ckpt")
    (tmp_path / "noheader.ckpt").write_bytes(b"garbage-without-newline")
    with pytest.raises(CheckpointError, match="header"):
        load_checkpoint(tmp_path / "noheader.ckpt")


def test_resume_refuses_mismatched_checkpoint():
    system = random_fleet(0, N, max_arrivals=1.0)
    arrivals = _arrivals(system)
    sim = SlotSimulator(system, arrivals, seed=0)
    with pytest.raises(Killed) as killed:
        sim.run(
            DriftPlusPenaltyPolicy(v=50.0),
            SLOTS,
            checkpoint_every=1,
            checkpoint_sink=KillSwitch(3),
        )
    checkpoint = killed.value.checkpoint
    # Wrong path: a vectorized simulator must refuse a scalar checkpoint.
    vec = SlotSimulator(system, arrivals, seed=0, vectorized=True)
    with pytest.raises(CheckpointError, match="path"):
        vec.run(
            DriftPlusPenaltyPolicy(v=50.0, vectorized=True),
            SLOTS,
            resume_from=checkpoint,
        )
    # Wrong configuration (different seed) → fingerprint mismatch.
    other = SlotSimulator(system, arrivals, seed=1)
    with pytest.raises(CheckpointError, match="fingerprint"):
        other.run(DriftPlusPenaltyPolicy(v=50.0), SLOTS, resume_from=checkpoint)


def test_hook_validation():
    with pytest.raises(ValueError, match="together"):
        validate_hooks(2, None)
    with pytest.raises(ValueError, match="together"):
        validate_hooks(None, lambda ck: None)
    with pytest.raises(ValueError, match="positive"):
        validate_hooks(0, lambda ck: None)


# -- QoS state under kill/resume ---------------------------------------------

_QOS = None


def _qos():
    """A QoS config aggressive enough that warm-pool evictions and cold
    starts actually happen inside the short checkpoint horizon."""
    global _QOS
    if _QOS is None:
        from repro.resilience.qos import QoSConfig

        _QOS = QoSConfig(
            memory_fraction=0.4, cold_start_seconds=0.3, shed_budget=20.0
        )
    return _QOS


@pytest.mark.parametrize("vectorized", [False, True])
def test_qos_fluid_kill_resume_differential(vectorized):
    """Warm/cold pool state, per-class flow, and the admission plan all
    live in the checkpoint: a killed+resumed QoS run is byte-identical."""
    failures = []
    for seed in range(10):
        system = random_fleet(seed, N, max_arrivals=1.5)
        arrivals = _arrivals(system)

        def make_sim():
            return SlotSimulator(
                system,
                arrivals,
                seed=seed,
                vectorized=vectorized,
                overload=OverloadControl(),
                qos=_qos(),
            )

        def run(sim, **kwargs):
            return sim.run(
                DriftPlusPenaltyPolicy(v=50.0, vectorized=vectorized),
                SLOTS,
                **kwargs,
            )

        baseline = run(make_sim())
        for kill in KILL_POINTS:
            resumed = _kill_and_resume(make_sim, run, kill)
            if resumed.records != baseline.records:
                failures.append((seed, kill))
            flow, base = resumed.class_flow, baseline.class_flow
            if (
                flow.generated != base.generated
                or flow.admitted != base.admitted
                or flow.shed != base.shed
                or flow.time != base.time
            ):
                failures.append((seed, kill, "flow"))
    assert not failures, f"qos fluid (vectorized={vectorized}): {failures}"


@pytest.mark.parametrize("engine", ["scalar", "fast"])
def test_qos_event_kill_resume_differential(engine):
    """The event engines checkpoint the warm pool too — resuming after a
    kill must not silently restart every partition warm (or cold)."""
    failures = []
    for seed in range(10):
        system = random_fleet(seed, N, max_arrivals=1.5)
        arrivals = _arrivals(system)
        faults = canonical_outage_plan(SLOTS, N, seed) if seed % 2 else None

        def make_sim():
            return EventSimulator(
                system,
                arrivals,
                seed=seed,
                faults=faults,
                recovery=RecoveryPolicy.default() if faults is not None else None,
                overload=OverloadControl(),
                qos=_qos(),
            )

        def run(sim, **kwargs):
            return sim.run(
                DriftPlusPenaltyPolicy(v=50.0), SLOTS, engine=engine, **kwargs
            )

        baseline = run(make_sim())
        for kill in KILL_POINTS:
            resumed = _kill_and_resume(make_sim, run, kill)
            if resumed.tasks != baseline.tasks:
                failures.append((seed, kill))
    assert not failures, f"qos event ({engine}): {failures}"


def test_qos_federated_fluid_kill_resume():
    from repro.federation.fluid import FederatedSlotSimulator

    for seed in range(3):
        topology = random_federation_topology(seed, 3, 6, max_arrivals=1.5)
        plan = static_home_plan(topology, SLOTS)
        arrivals = [PoissonArrivals(d.mean_arrivals) for d in topology.devices]

        def make_sim():
            return FederatedSlotSimulator(
                topology=topology,
                arrivals=arrivals,
                plan=plan,
                seed=seed,
                overload=OverloadControl(),
                qos=_qos(),
            )

        def run(sim, **kwargs):
            return sim.run(DriftPlusPenaltyPolicy(v=50.0), SLOTS, **kwargs)

        baseline = run(make_sim())
        for kill in (2, 5, 8):
            resumed = _kill_and_resume(make_sim, run, kill)
            assert (
                resumed.global_result.records == baseline.global_result.records
            ), (seed, kill)
            assert (
                resumed.global_result.class_flow.generated
                == baseline.global_result.class_flow.generated
            )


def test_qos_runtime_kill_resume_control_plane():
    """The live path replays its per-slot decisions from the checkpoint;
    with QoS attached the replayed control plane (device, offload, class
    tag) must still match the uninterrupted run.  No governor here: live
    shedding reads real thread backlogs, which are timing-dependent by
    design — the deterministic contract covers the QoS plan and the
    warm pool, not racy queue observations."""
    from repro.experiments.common import TestbedConfig, leime_scheme
    from repro.runtime import LeimeRuntime

    from repro.resilience.qos import QoSConfig

    # Light load and modest speedup: the policy reads real thread
    # backlogs, so determinism needs every queue drained (holds
    # included) well before each slot boundary.
    config = TestbedConfig(num_devices=2, arrival_rate=0.3)
    system = config.system(leime_scheme(config).partition)
    runtime_qos = QoSConfig(memory_fraction=0.3, cold_start_seconds=0.1)
    for seed in range(5):

        def fresh():
            return LeimeRuntime(
                system, DriftPlusPenaltyPolicy(v=50.0), speedup=500.0, seed=seed
            )

        def run(runtime, **kwargs):
            try:
                return runtime.run(
                    config.arrival_processes(),
                    num_slots=6,
                    qos=runtime_qos,
                    **kwargs,
                )
            finally:
                assert runtime.shutdown()

        baseline = run(fresh())
        control = [
            (t.device, t.offloaded, t.shed, t.qos) for t in baseline.tasks
        ]
        assert any(t.qos for t in baseline.tasks)
        switch = KillSwitch(4)
        with pytest.raises(Killed):
            run(fresh(), checkpoint_every=1, checkpoint_sink=switch)
        by_slot = {ck.slot: ck for ck in switch.checkpoints}
        for kill in (2, 4):
            checkpoint = checkpoint_from_bytes(
                checkpoint_to_bytes(by_slot[kill])
            )
            resumed = run(fresh(), resume_from=checkpoint)
            assert [
                (t.device, t.offloaded, t.shed, t.qos) for t in resumed.tasks
            ] == control, (seed, kill)


def test_qos_config_mismatch_refuses_resume():
    """The QoS config is part of the run fingerprint on every path: a
    checkpoint taken under one class/memory regime must not silently
    resume under another."""
    from dataclasses import replace as dc_replace

    system = random_fleet(0, N, max_arrivals=1.0)
    arrivals = _arrivals(system)
    sim = SlotSimulator(system, arrivals, seed=0, qos=_qos())
    with pytest.raises(Killed) as killed:
        sim.run(
            DriftPlusPenaltyPolicy(v=50.0),
            SLOTS,
            checkpoint_every=1,
            checkpoint_sink=KillSwitch(3),
        )
    checkpoint = killed.value.checkpoint
    # Different memory budget → different fingerprint.
    other = SlotSimulator(
        system,
        arrivals,
        seed=0,
        qos=dc_replace(_qos(), memory_fraction=0.9),
    )
    with pytest.raises(CheckpointError, match="fingerprint"):
        other.run(DriftPlusPenaltyPolicy(v=50.0), SLOTS, resume_from=checkpoint)
    # Dropping QoS entirely must refuse too.
    bare = SlotSimulator(system, arrivals, seed=0)
    with pytest.raises(CheckpointError, match="fingerprint"):
        bare.run(DriftPlusPenaltyPolicy(v=50.0), SLOTS, resume_from=checkpoint)
    # Event path honours the same contract.
    esim = EventSimulator(system, arrivals, seed=0, qos=_qos())
    with pytest.raises(Killed) as killed:
        esim.run(
            DriftPlusPenaltyPolicy(v=50.0),
            SLOTS,
            checkpoint_every=1,
            checkpoint_sink=KillSwitch(3),
        )
    other_e = EventSimulator(
        system, arrivals, seed=0, qos=dc_replace(_qos(), cold_start_seconds=9.9)
    )
    with pytest.raises(CheckpointError, match="fingerprint"):
        other_e.run(
            DriftPlusPenaltyPolicy(v=50.0),
            SLOTS,
            resume_from=killed.value.checkpoint,
        )


def test_checkpoint_log_collects_cadence():
    system = random_fleet(1, N, max_arrivals=1.0)
    sim = SlotSimulator(system, _arrivals(system), seed=1)
    log = CheckpointLog()
    sim.run(
        DriftPlusPenaltyPolicy(v=50.0),
        SLOTS,
        checkpoint_every=3,
        checkpoint_sink=log,
    )
    assert [ck.slot for ck in log.checkpoints] == [3, 6, 9]
    assert log.latest.slot == 9

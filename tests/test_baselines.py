"""Benchmark exit settings and ablation strategies."""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    BENCHMARK_EXIT_SETTINGS,
    EXIT_STRATEGIES,
    ddnn_exit_setting,
    edgent_exit_setting,
    mean_exit_setting,
    min_comp_exit_setting,
    min_tran_exit_setting,
    neurosurgeon_partition,
)
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import MODEL_BUILDERS, build_model


@pytest.fixture(scope="module", params=sorted(MODEL_BUILDERS))
def me_dnn(request):
    return MultiExitDNN(build_model(request.param))


def test_all_strategies_return_valid_selections(me_dnn):
    strategies = list(EXIT_STRATEGIES.values()) + list(
        BENCHMARK_EXIT_SETTINGS.values()
    )
    for strategy in strategies:
        selection = strategy(me_dnn)
        assert 1 <= selection.first < selection.second < selection.third
        assert selection.third == me_dnn.num_exits


def test_ddnn_puts_first_exit_on_device_edge(me_dnn):
    assert ddnn_exit_setting(me_dnn).first == 1


def test_edgent_picks_globally_smallest_data(me_dnn):
    selection = edgent_exit_setting(me_dnn)
    profile = me_dnn.profile
    sizes = {
        i: profile.intermediate_bytes(i)
        for i in range(1, me_dnn.num_exits - 1)
    }
    assert profile.intermediate_bytes(selection.first) == min(sizes.values())


def test_min_comp_is_shallowest(me_dnn):
    assert min_comp_exit_setting(me_dnn).as_tuple()[:2] == (1, 2)


def test_min_tran_equals_edgent(me_dnn):
    assert min_tran_exit_setting(me_dnn) == edgent_exit_setting(me_dnn)


def test_mean_splits_flops_in_thirds(me_dnn):
    selection = mean_exit_setting(me_dnn)
    profile = me_dnn.profile
    cumulative = profile.cumulative_flops
    total = profile.total_flops
    # Each cut must be the closest candidate to its target third.
    first_err = abs(cumulative[selection.first] - total / 3)
    for candidate in range(1, me_dnn.num_exits - 1):
        assert first_err <= abs(cumulative[candidate] - total / 3) + 1e-6


def test_neurosurgeon_partition_has_no_early_exits(me_dnn):
    selection = me_dnn.selection(2, me_dnn.num_exits - 1)
    partition = neurosurgeon_partition(me_dnn, selection)
    assert partition.sigma == (0.0, 0.0, 1.0)
    # No exit-head FLOPs on device/edge blocks: strictly less work than the
    # LEIME partition at the same cuts.
    leime = me_dnn.partition(selection)
    assert partition.mu1 < leime.mu1
    assert partition.mu2 < leime.mu2
    assert partition.mu3 == pytest.approx(leime.mu3)


def test_neurosurgeon_expected_flops_is_full_depth(me_dnn):
    selection = me_dnn.selection(2, me_dnn.num_exits - 1)
    partition = neurosurgeon_partition(me_dnn, selection)
    assert partition.expected_flops_per_task == pytest.approx(
        sum(partition.block_flops)
    )

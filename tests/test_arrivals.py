"""Arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.arrivals import (
    ArrivalProcess,
    ConstantArrivals,
    PiecewiseRateArrivals,
    PoissonArrivals,
    SinusoidalRateArrivals,
    TraceArrivals,
    UniformArrivals,
    mean_series,
)


def test_constant_arrivals():
    process = ConstantArrivals(2.5)
    rng = np.random.default_rng(0)
    assert process.mean(0) == 2.5
    assert process.sample(7, rng) == 2.5
    with pytest.raises(ValueError):
        ConstantArrivals(-1.0)


def test_poisson_mean_converges():
    process = PoissonArrivals(3.0)
    rng = np.random.default_rng(1)
    samples = [process.sample(t, rng) for t in range(5000)]
    assert np.mean(samples) == pytest.approx(3.0, rel=0.05)


def test_poisson_truncation():
    process = PoissonArrivals(3.0, maximum=4.0)
    rng = np.random.default_rng(2)
    assert max(process.sample(t, rng) for t in range(2000)) <= 4.0
    with pytest.raises(ValueError):
        PoissonArrivals(5.0, maximum=1.0)


def test_uniform_arrivals_bounds():
    process = UniformArrivals(1, 4)
    rng = np.random.default_rng(3)
    samples = [process.sample(t, rng) for t in range(500)]
    assert min(samples) >= 1 and max(samples) <= 4
    assert process.mean(0) == 2.5
    with pytest.raises(ValueError):
        UniformArrivals(4, 1)


def test_trace_arrivals_cycles():
    process = TraceArrivals((1.0, 2.0, 3.0))
    rng = np.random.default_rng(4)
    assert process.sample(0, rng) == 1.0
    assert process.sample(4, rng) == 2.0
    assert process.mean(5) == 3.0
    with pytest.raises(ValueError):
        TraceArrivals(())


def test_piecewise_phases():
    process = PiecewiseRateArrivals(((10, 1.0), (5, 6.0)))
    assert process.mean(0) == 1.0
    assert process.mean(9) == 1.0
    assert process.mean(10) == 6.0
    assert process.mean(14) == 6.0
    assert process.mean(15) == 1.0  # cycles
    with pytest.raises(ValueError):
        PiecewiseRateArrivals(((0, 1.0),))
    with pytest.raises(ValueError):
        PiecewiseRateArrivals(())


def test_piecewise_samples_follow_phase_rate():
    process = PiecewiseRateArrivals(((50, 0.0), (50, 8.0)))
    rng = np.random.default_rng(5)
    calm = [process.sample(t, rng) for t in range(50)]
    busy = [process.sample(t, rng) for t in range(50, 100)]
    assert max(calm) == 0.0
    assert np.mean(busy) == pytest.approx(8.0, rel=0.2)


def test_sinusoidal_clamps_at_zero():
    process = SinusoidalRateArrivals(base=1.0, amplitude=3.0, period=20)
    rates = [process.mean(t) for t in range(40)]
    assert min(rates) == 0.0
    assert max(rates) == pytest.approx(4.0, abs=0.1)
    with pytest.raises(ValueError):
        SinusoidalRateArrivals(base=1.0, amplitude=1.0, period=0)


# -- protocol conformance --------------------------------------------------------


@pytest.mark.parametrize(
    "process",
    [
        ConstantArrivals(1.0),
        PoissonArrivals(2.0),
        UniformArrivals(1, 3),
        TraceArrivals((1.0, 2.0)),
        PiecewiseRateArrivals(((5, 1.0),)),
        SinusoidalRateArrivals(base=1.0, amplitude=0.5, period=10),
    ],
    ids=lambda p: type(p).__name__,
)
def test_processes_satisfy_arrival_protocol(process):
    assert isinstance(process, ArrivalProcess)
    rng = np.random.default_rng(0)
    for t in (0, 3, 17):
        assert process.mean(t) >= 0.0
        assert process.sample(t, rng) >= 0.0


def test_mean_series_matches_per_slot_means():
    process = TraceArrivals((1.0, 2.0, 3.0))
    series = mean_series(process, 5)
    np.testing.assert_array_equal(series, [1.0, 2.0, 3.0, 1.0, 2.0])
    assert series.dtype == np.float64


def test_trace_arrivals_hold_last():
    process = TraceArrivals((1.0, 2.0, 3.0), cycle=False)
    assert process.mean(2) == 3.0
    assert process.mean(10) == 3.0  # holds the last slot instead of wrapping


def test_trace_arrivals_poisson_sampling():
    process = TraceArrivals((4.0,) * 2000, poisson=True)
    rng = np.random.default_rng(6)
    samples = [process.sample(t, rng) for t in range(2000)]
    assert process.mean(0) == 4.0  # mean stays the deterministic rate
    assert np.mean(samples) == pytest.approx(4.0, rel=0.1)
    assert any(s != 4.0 for s in samples)


def test_trace_arrivals_from_series_validates():
    series = np.array([0.5, 1.5])
    process = TraceArrivals.from_series(series)
    assert process.trace == (0.5, 1.5)
    with pytest.raises(ValueError):
        TraceArrivals.from_series(np.array([1.0, -2.0]))
    with pytest.raises(ValueError):
        TraceArrivals.from_series(np.array([1.0, np.nan]))

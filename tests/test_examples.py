"""The example scripts: importable, documented, and quickstart runs."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {p.stem for p in EXAMPLE_FILES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_is_importable_and_documented(path):
    module = _load(path)
    assert module.__doc__, f"{path.stem} needs a docstring"
    assert "Run:" in module.__doc__, f"{path.stem} docstring should say how to run"
    assert callable(getattr(module, "main", None)), f"{path.stem} needs main()"


def test_quickstart_runs_end_to_end(capsys):
    """The quickstart is the first thing a user executes; it must work."""
    module = _load(EXAMPLES_DIR / "quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "Exit setting" in out
    assert "LEIME" in out
    assert "device-only" in out

"""Text reporting: sparklines, line charts, JSON export."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

import numpy as np
import pytest

from repro.report import export_json, line_chart, sparkline


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_constant_and_empty():
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0]) == "▁▁"


def test_sparkline_nan_renders_space():
    assert sparkline([0.0, math.nan, 1.0])[1] == " "
    assert sparkline([math.nan]) == " "


def test_line_chart_contains_series_and_labels():
    chart = line_chart(
        {"LEIME": [1, 2, 3], "DDNN": [3, 2, 1]},
        x_labels=["2 Mbps", "128 Mbps"],
        title="Fig. 7",
    )
    assert "Fig. 7" in chart
    assert "* LEIME" in chart
    assert "o DDNN" in chart
    assert "2 Mbps" in chart and "128 Mbps" in chart
    assert "3.00" in chart and "1.00" in chart


def test_line_chart_resamples_long_series():
    chart = line_chart({"x": list(range(1000))}, width=32)
    body_rows = [l for l in chart.splitlines() if "|" in l]
    assert all(len(row) == len(body_rows[0]) for row in body_rows)


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart({})
    with pytest.raises(ValueError):
        line_chart({"a": [1, 2], "b": [1]})
    with pytest.raises(ValueError):
        line_chart({"a": []})
    with pytest.raises(ValueError):
        line_chart({"a": [1, 2]}, height=1)


def test_line_chart_flat_series():
    chart = line_chart({"flat": [2.0, 2.0, 2.0]})
    assert "*" in chart


def test_export_json_roundtrip(tmp_path):
    @dataclass
    class Inner:
        values: tuple

    payload = {
        "series": Inner(values=(1, 2)),
        "array": np.array([1.5, 2.5]),
        "scalar": np.float64(3.5),
    }
    path = export_json(payload, tmp_path / "out" / "r.json")
    loaded = json.loads(path.read_text())
    assert loaded["series"]["values"] == [1, 2]
    assert loaded["array"] == [1.5, 2.5]
    assert loaded["scalar"] == 3.5

"""Layer FLOP math and the chain builder."""

from __future__ import annotations

import pytest

from repro.models.layers import ChainBuilder, conv2d_flops, conv_out_hw, pool2d_flops


def test_conv_out_hw_basic():
    assert conv_out_hw(32, 3, 1, 1) == 32  # same-padding 3x3
    assert conv_out_hw(32, 2, 2, 0) == 16  # 2x2 stride-2 pool
    assert conv_out_hw(299, 3, 2, 0) == 149  # inception stem conv


def test_conv_out_hw_rejects_collapse():
    with pytest.raises(ValueError):
        conv_out_hw(2, 5, 1, 0)


def test_conv2d_flops_known_value():
    # 3x3 conv, 3->64 channels, 32x32 output: 2*3*9*64*32*32.
    flops, shape = conv2d_flops((3, 32, 32), 64, 3, padding=1)
    assert shape == (64, 32, 32)
    assert flops == 2 * 3 * 9 * 64 * 32 * 32


def test_conv2d_flops_asymmetric_kernel():
    flops, shape = conv2d_flops((8, 17, 17), 8, (1, 7), padding=(0, 3))
    assert shape == (8, 17, 17)
    assert flops == 2 * 8 * 7 * 8 * 17 * 17


def test_pool2d_shape():
    flops, shape = pool2d_flops((64, 32, 32), 2, 2)
    assert shape == (64, 16, 16)
    assert flops == 2 * 2 * 64 * 16 * 16


def test_chain_builder_conv_unit():
    chain2 = ChainBuilder(input_shape=(3, 32, 32))
    chain2.conv("c1", 64, 3, padding=1)
    chain2.conv("c2", 64, 3, padding=1)
    chain2.conv("c3", 64, 3, padding=1, pool=(2, 2))
    profile = chain2.build("tiny", 3072)
    assert profile.num_layers == 3
    assert profile.layers[0].output_shape == (64, 32, 32)
    assert profile.layers[2].output_shape == (64, 16, 16)


def test_chain_builder_fused_pool_counts_flops():
    plain = ChainBuilder(input_shape=(3, 32, 32))
    plain.conv("c", 64, 3, padding=1)
    pooled = ChainBuilder(input_shape=(3, 32, 32))
    pooled.conv("c", 64, 3, padding=1, pool=(2, 2))
    assert pooled._layers[0].flops > plain._layers[0].flops


def test_residual_block_projection_flops():
    """A stride-2 block must include the 1x1 projection conv."""
    with_proj = ChainBuilder(input_shape=(64, 56, 56))
    with_proj.basic_residual_block("b", 128, stride=2)
    without = ChainBuilder(input_shape=(128, 28, 28))
    without.basic_residual_block("b", 128, stride=1)
    assert with_proj._layers[0].output_shape == (128, 28, 28)
    assert without._layers[0].output_shape == (128, 28, 28)
    # Two 3x3 convs at 28x28 from 128ch are the same work; the projection
    # conv makes the strided block strictly more expensive than
    # 2*conv(128->128@28) would suggest relative to its own first conv at
    # stride 2 — just assert the projection contributed something.
    two_convs = 2 * (2 * 128 * 9 * 128 * 28 * 28)
    first_conv = 2 * 64 * 9 * 128 * 28 * 28
    second_conv = 2 * 128 * 9 * 128 * 28 * 28
    projection = 2 * 64 * 1 * 128 * 28 * 28
    assert with_proj._layers[0].flops == pytest.approx(
        first_conv + second_conv + projection
    )
    assert without._layers[0].flops == pytest.approx(two_convs)


def test_fire_module_shape_concatenates_expands():
    chain = ChainBuilder(input_shape=(96, 16, 16))
    chain.fire("f", squeeze=16, expand1x1=64, expand3x3=64)
    assert chain._layers[0].output_shape == (128, 16, 16)


def test_uncommitted_flops_raise_on_build():
    chain = ChainBuilder(input_shape=(3, 32, 32))
    chain.conv("a", 8, 3, padding=1)
    chain.conv("b", 8, 3, padding=1)
    chain.conv("c", 8, 3, padding=1)
    chain._conv(8, 3, padding=1)  # pending, never committed
    with pytest.raises(RuntimeError):
        chain.build("broken", 3072)


def test_builder_rejects_bad_input_shape():
    with pytest.raises(ValueError):
        ChainBuilder(input_shape=(0, 32, 32))

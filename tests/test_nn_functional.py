"""Numpy NN primitives: values and gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.functional import (
    accuracy,
    confidence,
    cross_entropy,
    cross_entropy_grad,
    one_hot,
    relu,
    relu_grad,
    softmax,
)


def test_relu_values():
    x = np.array([-1.0, 0.0, 2.0])
    assert relu(x).tolist() == [0.0, 0.0, 2.0]


def test_relu_grad_masks_negatives():
    x = np.array([-1.0, 0.5])
    grad = relu_grad(x, np.array([3.0, 3.0]))
    assert grad.tolist() == [0.0, 3.0]


def test_softmax_rows_sum_to_one():
    logits = np.random.default_rng(0).normal(size=(5, 10))
    probs = softmax(logits)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert (probs > 0).all()


def test_softmax_is_shift_invariant():
    logits = np.array([[1.0, 2.0, 3.0]])
    assert np.allclose(softmax(logits), softmax(logits + 100.0))


def test_softmax_handles_large_logits():
    probs = softmax(np.array([[1000.0, 0.0]]))
    assert np.isfinite(probs).all()
    assert probs[0, 0] == pytest.approx(1.0)


def test_one_hot():
    encoded = one_hot(np.array([0, 2]), 3)
    assert encoded.tolist() == [[1, 0, 0], [0, 0, 1]]
    with pytest.raises(ValueError):
        one_hot(np.array([3]), 3)
    with pytest.raises(ValueError):
        one_hot(np.array([[0]]), 3)


def test_cross_entropy_perfect_prediction():
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    labels = np.array([0, 1])
    assert cross_entropy(logits, labels) == pytest.approx(0.0, abs=1e-6)


def test_cross_entropy_uniform_prediction():
    logits = np.zeros((4, 10))
    labels = np.arange(4) % 10
    assert cross_entropy(logits, labels) == pytest.approx(np.log(10))


def test_cross_entropy_grad_numerically():
    """Finite-difference check of the fused softmax-CE gradient."""
    rng = np.random.default_rng(1)
    logits = rng.normal(size=(3, 5))
    labels = np.array([0, 3, 2])
    grad = cross_entropy_grad(logits, labels)
    eps = 1e-6
    for i in range(3):
        for j in range(5):
            bumped = logits.copy()
            bumped[i, j] += eps
            numeric = (cross_entropy(bumped, labels) - cross_entropy(logits, labels)) / eps
            assert grad[i, j] == pytest.approx(numeric, abs=1e-4)


def test_accuracy():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    labels = np.array([0, 1, 1])
    assert accuracy(logits, labels) == pytest.approx(2 / 3)
    assert accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int)) == 0.0


def test_confidence_is_max_softmax():
    logits = np.array([[2.0, 0.0, 0.0]])
    assert confidence(logits)[0] == pytest.approx(softmax(logits)[0].max())

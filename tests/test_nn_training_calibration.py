"""Training loop and threshold calibration on a small instance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageDataset, train_val_test_split
from repro.nn.calibration import (
    calibrate_thresholds,
    evaluate_combination,
    exit_statistics,
)
from repro.nn.multi_exit_net import MultiExitMLP
from repro.nn.training import SGD, TrainingConfig, per_exit_accuracy, train_multi_exit


@pytest.fixture(scope="module")
def trained():
    """A small trained net shared by this module's tests (training is the
    expensive part; the assertions are all read-only)."""
    gen = SyntheticImageDataset(num_chunks=5, chunk_dim=8, seed=0)
    full = gen.sample(4000, seed=1)
    train, val, test = train_val_test_split(full)
    net = MultiExitMLP(
        input_dim=gen.dim, num_classes=10, num_stages=5, hidden=48, seed=0
    )
    losses = train_multi_exit(
        net, train, TrainingConfig(epochs=20, learning_rate=0.08, seed=0)
    )
    return net, train, val, test, losses


def test_training_reduces_loss(trained):
    _, _, _, _, losses = trained
    assert losses[-1] < losses[0] / 2


def test_training_rejects_empty_dataset():
    gen = SyntheticImageDataset(num_chunks=5, chunk_dim=8)
    net = MultiExitMLP(input_dim=gen.dim, num_classes=10, num_stages=5)
    data = gen.sample(10, seed=0).subset(np.array([], dtype=int))
    with pytest.raises(ValueError):
        train_multi_exit(net, data)


def test_deeper_exits_are_more_accurate(trained):
    net, _, _, test, _ = trained
    acc = per_exit_accuracy(net, test)
    # Depth grading: the final exit clearly beats the first, and the curve
    # is near-monotone (small local dips allowed).
    assert acc[-1] > acc[0] + 0.1
    assert all(acc[i + 1] >= acc[i] - 0.05 for i in range(len(acc) - 1))


def test_hard_samples_need_depth(trained):
    net, _, _, test, _ = trained
    hard = test.subset(np.where(test.hard)[0])
    easy = test.subset(np.where(~test.hard)[0])
    acc_hard = per_exit_accuracy(net, hard)
    acc_easy = per_exit_accuracy(net, easy)
    # Depth helps hard samples far more than easy ones.
    assert (acc_hard[-1] - acc_hard[0]) > (acc_easy[-1] - acc_easy[0])


def test_calibration_rates_monotone(trained):
    net, _, val, _, _ = trained
    cal = calibrate_thresholds(net, val)
    rates = cal.exit_rates
    assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))
    assert rates[-1] == 1.0
    assert len(cal.thresholds) == net.num_stages
    assert cal.thresholds[-1] == 0.0


def test_calibration_empty_validation_raises(trained):
    net, _, val, _, _ = trained
    with pytest.raises(ValueError):
        calibrate_thresholds(net, val.subset(np.array([], dtype=int)))


def test_combination_accuracy_loss_small(trained):
    """The calibrated thresholds must keep the ME accuracy within ~3pp of
    the original, the §III-B2 guarantee."""
    net, _, val, test, _ = trained
    cal = calibrate_thresholds(net, val, accuracy_margin=0.01)
    for first, second in ((1, 2), (1, 4), (2, 3), (3, 4)):
        evaluation = evaluate_combination(net, test, cal, first, second)
        assert abs(evaluation.accuracy_loss) < 0.03
        sigma1, sigma2, sigma3 = evaluation.sigma
        assert 0 <= sigma1 <= sigma2 <= sigma3 == 1.0


def test_combination_validation(trained):
    net, _, val, test, _ = trained
    cal = calibrate_thresholds(net, val)
    with pytest.raises(ValueError):
        evaluate_combination(net, test, cal, 3, 3)
    with pytest.raises(ValueError):
        evaluate_combination(net, test, cal, 1, net.num_stages)


def test_higher_margin_releases_more(trained):
    net, _, val, _, _ = trained
    strict = calibrate_thresholds(net, val, accuracy_margin=0.0)
    loose = calibrate_thresholds(net, val, accuracy_margin=0.05)
    assert sum(loose.exit_rates) >= sum(strict.exit_rates) - 1e-9


def test_exit_statistics_shape(trained):
    net, _, val, test, _ = trained
    cal = calibrate_thresholds(net, val)
    stats = exit_statistics(net, test, cal)
    assert len(stats["exit_rates"]) == net.num_stages
    assert len(stats["standalone_accuracy"]) == net.num_stages


def test_sgd_clipping_bounds_update():
    opt = SGD(learning_rate=1.0, momentum=0.0, clip_norm=1.0)
    param = np.zeros(4)
    grads = [np.full(4, 100.0)]
    opt.step([param], grads)
    assert np.linalg.norm(param) == pytest.approx(1.0)


def test_sgd_param_set_change_rejected():
    opt = SGD()
    a = np.zeros(3)
    opt.step([a], [np.ones(3)])
    with pytest.raises(ValueError):
        opt.step([a, np.zeros(2)], [np.ones(3), np.ones(2)])

"""The accuracy-latency frontier experiment (reduced size)."""

from __future__ import annotations

import pytest

from repro.experiments.pareto import run_pareto


@pytest.fixture(scope="module")
def pareto():
    return run_pareto(samples=5000, epochs=20, model="squeezenet-1.0")


def test_frontier_trades_accuracy_for_latency(pareto):
    first, last = pareto.points[0], pareto.points[-1]
    assert last.expected_tct < first.expected_tct
    assert last.accuracy_loss >= first.accuracy_loss


def test_frontier_latency_monotone(pareto):
    assert pareto.is_frontier_monotone()


def test_frontier_selections_valid(pareto):
    for point in pareto.points:
        e1, e2, e3 = point.selection
        assert 1 <= e1 < e2 < e3

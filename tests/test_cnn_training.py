"""Integration: the multi-exit CNN learns receptive-field-graded data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_images import SyntheticPatchImageDataset
from repro.nn.calibration import calibrate_thresholds
from repro.nn.multi_exit_cnn import MultiExitCNN
from repro.nn.training import SGD


@pytest.fixture(scope="module")
def trained_cnn():
    gen = SyntheticPatchImageDataset(
        size=8, channels=2, num_classes=4, hard_fraction=0.5, noise=0.4,
        distractor_fraction=0.0, label_noise=0.0,
    )
    data = gen.sample(1200, seed=1)
    val = gen.sample(400, seed=2)
    net = MultiExitCNN(
        in_channels=2, num_classes=4, num_stages=4, width=10,
        downsample_at=3, seed=0,
    )
    optimiser = SGD(learning_rate=0.05, momentum=0.9)
    rng = np.random.default_rng(0)
    losses = []
    for _ in range(8):
        order = rng.permutation(len(data))
        epoch = 0.0
        for start in range(0, len(data), 64):
            idx = order[start : start + 64]
            epoch += net.train_batch(data.x[idx], data.y[idx])
            optimiser.step(net.params(), net.grads())
        losses.append(epoch)
    return net, gen, val, losses


def _accuracy_per_exit(net, dataset):
    logits = net.forward_all(dataset.x, train=False)
    return [float((l.argmax(axis=1) == dataset.y).mean()) for l in logits]


def test_cnn_training_reduces_loss(trained_cnn):
    _, _, _, losses = trained_cnn
    assert losses[-1] < losses[0] * 0.7


def test_cnn_learns_above_chance(trained_cnn):
    net, _, val, _ = trained_cnn
    acc = _accuracy_per_exit(net, val)
    assert acc[-1] > 0.5  # 4 classes, chance = 0.25


def test_cnn_depth_helps_hard_samples(trained_cnn):
    """The receptive-field mechanism: global-template (hard) samples need
    depth far more than local-patch (easy) ones."""
    net, _, val, _ = trained_cnn
    hard = val.subset(np.where(val.hard)[0])
    easy = val.subset(np.where(~val.hard)[0])
    acc_hard = _accuracy_per_exit(net, hard)
    acc_easy = _accuracy_per_exit(net, easy)
    gain_hard = acc_hard[-1] - acc_hard[0]
    gain_easy = acc_easy[-1] - acc_easy[0]
    assert gain_hard > gain_easy
    assert acc_hard[-1] > acc_hard[0] + 0.1


def test_cnn_calibration_works_unchanged(trained_cnn):
    """The calibration machinery is network-agnostic: it runs on the CNN
    exactly as on the MLP (it only consumes logits)."""
    net, _, val, _ = trained_cnn
    calibration = calibrate_thresholds(net, val, accuracy_margin=0.02)
    assert len(calibration.thresholds) == net.num_stages
    rates = calibration.exit_rates
    assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))
    assert rates[-1] == 1.0

"""Differential harness: the array-backed fast event engine must replay
the scalar engine's per-task records exactly.

The contract (see :mod:`repro.sim.fast_events`) is *per-task-record
equality*: same task identity, exit tier, retry and drop counts, and the
same completion time and accrual split to 1e-9, across seeded
configurations spanning {no faults, the canonical outage plan,
stragglers + retries}.  Each scenario runs on a fresh simulator and a
fresh policy per engine (both carry per-run state), exactly as a caller
comparing engines would.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.offloading import FixedRatioPolicy
from repro.resilience.faults import (
    FaultPlanSpec,
    canonical_outage_plan,
    generate_fault_plan,
)
from repro.resilience.recovery import RecoveryPolicy
from repro.sim.events import EventSimulator

from .helpers import random_fleet

#: seeds × scenarios = the differential sweep (≥ 100 seeded configs).
SEEDS = tuple(range(34))
SCENARIOS = ("no-faults", "canonical-outage", "stragglers-retries")

NUM_DEVICES = 3
NUM_SLOTS = 8


def _build(scenario: str, seed: int) -> EventSimulator:
    """One seeded configuration; every field that matters varies with the
    seed so the sweep covers heterogeneous fleets, arrival mixes, and
    spread/boundary arrivals."""
    fleet_seed = 100 + seed
    system = random_fleet(
        fleet_seed, NUM_DEVICES, heterogeneous=(seed % 3 == 0)
    )
    from repro.sim.arrivals import PoissonArrivals

    arrivals = [PoissonArrivals(0.3 + 0.05 * (seed % 5))] * NUM_DEVICES
    kwargs = dict(
        system=system,
        arrivals=arrivals,
        seed=seed,
        spread_arrivals=(seed % 4 != 1),
        shared_uplink=(seed % 5 == 2),
    )
    if scenario == "canonical-outage":
        kwargs["faults"] = canonical_outage_plan(
            num_slots=NUM_SLOTS, num_devices=NUM_DEVICES, seed=seed
        )
        kwargs["recovery"] = RecoveryPolicy.default()
    elif scenario == "stragglers-retries":
        spec = FaultPlanSpec(
            num_slots=NUM_SLOTS,
            num_devices=NUM_DEVICES,
            drop_prob=0.08,
            corrupt_prob=0.05,
            straggler_prob=0.15,
        )
        kwargs["faults"] = generate_fault_plan(spec, seed=seed)
        kwargs["recovery"] = RecoveryPolicy(
            max_retries=1 + seed % 3,
            deadline=None if seed % 2 else 12.0,
            fallback_local=bool(seed % 2),
        )
    return EventSimulator(**kwargs)


def _run_pair(scenario: str, seed: int):
    ratio = 0.3 + 0.1 * (seed % 5)
    scalar = _build(scenario, seed).run(
        FixedRatioPolicy(ratio), NUM_SLOTS, drain_limit_factor=100.0
    )
    fast = _build(scenario, seed).run(
        FixedRatioPolicy(ratio),
        NUM_SLOTS,
        drain_limit_factor=100.0,
        engine="fast",
    )
    return scalar, fast


def _assert_records_equal(scalar, fast, tag: str) -> None:
    assert len(scalar.tasks) == len(fast.tasks), tag
    assert scalar.horizon == pytest.approx(fast.horizon, abs=1e-9), tag
    for ta, tb in zip(scalar.tasks, fast.tasks):
        ctx = f"{tag} task {ta.task_id}"
        assert ta.task_id == tb.task_id, ctx
        assert ta.device == tb.device, ctx
        assert ta.created == tb.created, ctx
        assert ta.offloaded == tb.offloaded, ctx
        assert ta.exit_tier == tb.exit_tier, ctx
        # Byte-identical integer accounting — retries and drops are the
        # acceptance currency of the resilience layer.
        assert ta.retries == tb.retries, ctx
        assert ta.dropped == tb.dropped, ctx
        assert (ta.completed is None) == (tb.completed is None), ctx
        if ta.completed is not None:
            assert ta.completed == pytest.approx(tb.completed, abs=1e-9), ctx
        assert ta.compute_time == pytest.approx(tb.compute_time, abs=1e-9), ctx
        assert ta.transfer_time == pytest.approx(
            tb.transfer_time, abs=1e-9
        ), ctx
        assert ta.queue_time == pytest.approx(tb.queue_time, abs=1e-9), ctx


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fast_engine_matches_scalar(scenario: str, seed: int) -> None:
    scalar, fast = _run_pair(scenario, seed)
    _assert_records_equal(scalar, fast, f"{scenario}/seed={seed}")


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fast_engine_properties(scenario: str) -> None:
    """Structural invariants of any fast-engine result, independent of the
    scalar twin: conservation of tasks and sane timestamps."""
    result = _build(scenario, seed=1).run(
        FixedRatioPolicy(0.5), NUM_SLOTS, drain_limit_factor=100.0, engine="fast"
    )
    tasks = result.tasks
    completed = sum(1 for t in tasks if t.done)
    dropped = sum(1 for t in tasks if t.dropped)
    in_flight = sum(1 for t in tasks if t.in_flight)
    # Conservation: every generated task is completed, dropped, or still
    # in flight — never lost, never double-counted.
    assert completed + dropped + in_flight == len(tasks)
    assert completed == len(result.completed)
    for t in tasks:
        assert t.created >= 0.0
        assert t.compute_time >= 0.0
        assert t.transfer_time >= 0.0
        assert t.queue_time >= -1e-12
        assert t.retries >= 0
        if t.done:
            assert t.completed >= t.created
            assert t.completed <= result.horizon + 1e-9
            assert t.exit_tier in (1, 2, 3)
        else:
            assert t.exit_tier == 0


def test_fast_engine_no_drain_leaves_tasks_in_flight() -> None:
    """``drain=False`` cuts at the horizon on both engines identically."""
    scalar = _build("no-faults", seed=3).run(
        FixedRatioPolicy(0.7), NUM_SLOTS, drain=False
    )
    fast = _build("no-faults", seed=3).run(
        FixedRatioPolicy(0.7), NUM_SLOTS, drain=False, engine="fast"
    )
    _assert_records_equal(scalar, fast, "no-drain")
    assert scalar.horizon == fast.horizon


def test_sorted_tct_cache_consistent_on_fast_results() -> None:
    """The cached sorted-TCT array (percentile fast path) reflects the
    fast engine's completed set."""
    result = _build("no-faults", seed=5).run(
        FixedRatioPolicy(0.5), NUM_SLOTS, drain_limit_factor=100.0, engine="fast"
    )
    tcts = sorted(t.tct for t in result.completed)
    if tcts:
        assert result.tct_percentile(50) == pytest.approx(
            float(np.percentile(np.asarray(tcts), 50))
        )


def test_unknown_engine_rejected() -> None:
    with pytest.raises(ValueError, match="unknown event engine"):
        _build("no-faults", seed=0).run(
            FixedRatioPolicy(0.5), NUM_SLOTS, engine="warp"
        )

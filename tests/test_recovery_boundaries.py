"""Recovery-policy boundary cases, pinned on both event engines.

Three edges of the retry budget: a zero budget (``max_retries=0`` —
the ``give_up`` path fires on first contact), a deadline sitting
exactly on a slot boundary (the gate is a strict ``>``, so an exactly-
boundary deadline is still admissible), and a backoff schedule that
overflows the generation horizon (retries land in the drain phase —
or past the drain limit, which must raise the unstable-system error on
both engines identically).
"""

from __future__ import annotations

import pytest

from repro.chaos.oracles import event_conservation
from repro.core.offloading import DriftPlusPenaltyPolicy
from repro.resilience.faults import canonical_outage_plan
from repro.resilience.recovery import RecoveryPolicy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator

from .helpers import random_fleet

SLOTS = 24
N = 3
ENGINES = ("scalar", "fast")


def _run(seed, recovery, engine, num_slots=SLOTS, drain_limit_factor=100.0):
    system = random_fleet(seed, N, max_arrivals=1.0)
    sim = EventSimulator(
        system,
        [PoissonArrivals(d.mean_arrivals) for d in system.devices],
        seed=seed,
        faults=canonical_outage_plan(num_slots, N, seed),
        recovery=recovery,
    )
    return sim.run(
        DriftPlusPenaltyPolicy(v=50.0),
        num_slots,
        drain_limit_factor=drain_limit_factor,
        engine=engine,
    )


def _conserved(result):
    assert not event_conservation(result), event_conservation(result)


# -- zero retry budget -------------------------------------------------------


def test_zero_budget_policy_shape():
    none = RecoveryPolicy.none()
    assert none.max_retries == 0
    assert none.backoff_table().size == 0
    assert none.backoff_span() == 0.0
    # backoff(0) is still a defined schedule value; the budget simply
    # never reaches it.
    assert none.backoff(0) == none.backoff_base
    with pytest.raises(ValueError):
        RecoveryPolicy(max_retries=-1)


@pytest.mark.parametrize("engine", ENGINES)
def test_zero_budget_never_retries(engine):
    result = _run(3, RecoveryPolicy.none(), engine)
    assert result.total_retries == 0
    assert result.dropped_count > 0  # the canonical outage bites
    _conserved(result)


def test_zero_budget_engines_agree_per_task():
    for seed in range(4):
        runs = [_run(seed, RecoveryPolicy.none(), e) for e in ENGINES]
        assert runs[0].tasks == runs[1].tasks, seed


@pytest.mark.parametrize("engine", ENGINES)
def test_zero_budget_with_local_fallback_rescues_raw_inputs(engine):
    """``max_retries=0`` with ``fallback_local`` still salvages tasks
    whose raw input never left the device — only the retry loop is
    disabled, not the fallback."""
    seed = 3
    naive = _run(seed, RecoveryPolicy.none(), engine)
    fallback = _run(
        seed,
        RecoveryPolicy(
            max_retries=0,
            fallback_local=True,
            exclude_dead_edge=False,
            watchdog=False,
        ),
        engine,
    )
    assert fallback.total_retries == 0
    assert fallback.dropped_count < naive.dropped_count
    _conserved(fallback)


# -- deadline exactly on a slot boundary -------------------------------------


@pytest.mark.parametrize("k", [1, 4])
def test_deadline_on_slot_boundary_engines_agree(k):
    """A deadline of exactly ``k`` slot lengths: the gate drops a retry
    only when it would land strictly *past* the boundary, and both
    engines agree task-for-task on which side each retry falls."""
    for seed in range(3):
        system = random_fleet(seed, N, max_arrivals=1.0)
        deadline = k * system.slot_length
        recovery = RecoveryPolicy(deadline=deadline)
        runs = [_run(seed, recovery, e) for e in ENGINES]
        assert runs[0].tasks == runs[1].tasks, (seed, k)
        _conserved(runs[0])


@pytest.mark.parametrize("engine", ENGINES)
def test_tight_boundary_deadline_drops_retries(engine):
    """With the deadline pinned to one slot length, the default backoff
    schedule breaches it quickly: the gate visibly converts retries
    into deadline drops relative to the unbounded run."""
    seed = 3
    system = random_fleet(seed, N, max_arrivals=1.0)
    tight = _run(seed, RecoveryPolicy(deadline=system.slot_length), engine)
    unbounded = _run(seed, RecoveryPolicy(deadline=None), engine)
    assert tight.dropped_count > unbounded.dropped_count
    assert tight.total_retries < unbounded.total_retries
    _conserved(tight)
    _conserved(unbounded)


@pytest.mark.parametrize("engine", ENGINES)
def test_deadline_at_drain_boundary_is_no_deadline(engine):
    """The most generous boundary: a deadline exactly on the drain-limit
    slot boundary admits every retry the drain limit itself admits, so
    the run is indistinguishable from ``deadline=None``."""
    seed = 5
    system = random_fleet(seed, N, max_arrivals=1.0)
    horizon_deadline = SLOTS * system.slot_length * 100.0
    bounded = _run(seed, RecoveryPolicy(deadline=horizon_deadline), engine)
    unbounded = _run(seed, RecoveryPolicy(deadline=None), engine)
    assert bounded.tasks == unbounded.tasks


# -- backoff overflowing the horizon -----------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_backoff_past_horizon_drains_to_completion(engine):
    """A backoff schedule whose first retry lands past the generation
    horizon: the retry resumes in the drain phase (the fault plan reads
    healthy past its last slot) and the task still finishes."""
    seed = 3
    horizon = SLOTS * random_fleet(seed, N).slot_length
    recovery = RecoveryPolicy(
        max_retries=2, backoff_base=2.0 * horizon, backoff_factor=1.0
    )
    result = _run(seed, recovery, engine)
    assert result.total_retries > 0
    assert result.horizon > horizon  # the drain ran past generation
    late = [
        t for t in result.completed
        if t.retries > 0 and t.completed is not None and t.completed > horizon
    ]
    assert late, "no retried task completed past the generation horizon"
    _conserved(result)


def test_backoff_past_horizon_engines_agree_per_task():
    horizon = SLOTS * random_fleet(0, N).slot_length
    recovery = RecoveryPolicy(
        max_retries=2, backoff_base=2.0 * horizon, backoff_factor=1.0
    )
    for seed in range(3):
        runs = [_run(seed, recovery, e) for e in ENGINES]
        assert runs[0].tasks == runs[1].tasks, seed


@pytest.mark.parametrize("engine", ENGINES)
def test_backoff_past_drain_limit_raises_on_both_engines(engine):
    """A backoff overflowing the *drain limit* is the unstable-system
    signal: both engines must refuse with the same loud error rather
    than silently truncating the retried tasks."""
    seed = 3
    horizon = SLOTS * random_fleet(seed, N).slot_length
    recovery = RecoveryPolicy(
        max_retries=1, backoff_base=100.0 * horizon, backoff_factor=1.0
    )
    with pytest.raises(RuntimeError, match="unstable"):
        _run(seed, recovery, engine, drain_limit_factor=50.0)

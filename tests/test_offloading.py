"""The slot cost model, Lyapunov queues, and offloading policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.offloading import (
    BalanceOffloadingPolicy,
    CapabilityBasedPolicy,
    DeviceConfig,
    DriftPlusPenaltyPolicy,
    EdgeSystem,
    FixedRatioPolicy,
    LyapunovState,
    drift_plus_penalty,
    edge_compute_split,
    feasible_ratio_interval,
    slot_cost,
)
from repro.hardware import (
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)

from tests.helpers import inception_partition, make_device, make_system


@pytest.fixture(scope="module")
def partition():
    return inception_partition()


def _device(bandwidth=10.0, latency=20.0, arrivals=0.5) -> DeviceConfig:
    return make_device(
        bandwidth_mbps=bandwidth, latency_ms=latency, arrivals=arrivals
    )


def _system(partition, devices=None) -> EdgeSystem:
    return make_system(partition=partition, devices=devices)


# -- DeviceConfig / EdgeSystem validation ------------------------------------


def test_device_config_validation():
    with pytest.raises(ValueError):
        DeviceConfig("x", 0.0, WIFI_DEVICE_EDGE, 1.0)
    with pytest.raises(ValueError):
        DeviceConfig("x", 1e9, WIFI_DEVICE_EDGE, -1.0)
    with pytest.raises(ValueError):
        DeviceConfig("x", 1e9, WIFI_DEVICE_EDGE, 1.0, overhead=-0.1)


def test_device_from_platform_copies_overhead():
    device = DeviceConfig.from_platform(RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 1.0)
    assert device.overhead == RASPBERRY_PI_3B.per_task_overhead
    assert device.flops == RASPBERRY_PI_3B.flops


def test_edge_system_default_shares_sum_to_one(partition):
    system = _system(partition)
    assert sum(system.shares) == pytest.approx(1.0)
    assert len(system.shares) == system.num_devices


def test_edge_system_validation(partition):
    with pytest.raises(ValueError):
        EdgeSystem(
            devices=(),
            edge_flops=1e9,
            cloud_flops=1e9,
            edge_cloud=INTERNET_EDGE_CLOUD,
            partition=partition,
        )
    with pytest.raises(ValueError):
        EdgeSystem(
            devices=(_device(),),
            edge_flops=1e9,
            cloud_flops=1e9,
            edge_cloud=INTERNET_EDGE_CLOUD,
            partition=partition,
            shares=(0.5, 0.5),
        )
    with pytest.raises(ValueError):
        EdgeSystem(
            devices=(_device(),),
            edge_flops=1e9,
            cloud_flops=1e9,
            edge_cloud=INTERNET_EDGE_CLOUD,
            partition=partition,
            shares=(0.7,),
        )


# -- Eq. 9 split --------------------------------------------------------------


def test_edge_compute_split_conserves_slice(partition):
    f1, f2 = edge_compute_split(0.5, 0.25, EDGE_I7_3770.flops, partition)
    assert f1 + f2 == pytest.approx(0.25 * EDGE_I7_3770.flops)
    assert f1 > 0 and f2 > 0


def test_edge_compute_split_eq9_ratio(partition):
    x, share = 0.3, 0.25
    f1, f2 = edge_compute_split(x, share, EDGE_I7_3770.flops, partition)
    expected_ratio = (x * partition.mu1) / ((1 - partition.sigma1) * partition.mu2)
    assert f1 / f2 == pytest.approx(expected_ratio)


def test_edge_compute_split_zero_offloading(partition):
    f1, f2 = edge_compute_split(0.0, 0.25, EDGE_I7_3770.flops, partition)
    assert f1 == 0.0
    assert f2 == pytest.approx(0.25 * EDGE_I7_3770.flops)


# -- Eq. 8 feasibility ---------------------------------------------------------


def test_feasible_interval_unconstrained(partition):
    device = _device(bandwidth=1000.0)
    assert feasible_ratio_interval(device, partition, 1.0, 1.0) == (0.0, 1.0)


def test_feasible_interval_zero_arrivals(partition):
    assert feasible_ratio_interval(_device(), partition, 1.0, 0.0) == (0.0, 1.0)


def test_feasible_interval_latency_eats_slot(partition):
    device = _device(latency=1500.0)  # longer than the 1 s slot
    assert feasible_ratio_interval(device, partition, 1.0, 1.0) == (0.0, 0.0)


def test_feasible_interval_heavy_intermediates_force_offloading(partition):
    """When intermediate uploads (x=0) exceed the slot budget but raw-input
    uploads (x=1) fit, the interval must exclude low ratios."""
    device = _device(bandwidth=4.0, arrivals=2.0)
    lo, hi = feasible_ratio_interval(device, partition, 1.0, 2.0)
    assert lo > 0.0
    assert hi == 1.0


def test_feasible_interval_respects_constraint_inside(partition):
    device = _device(bandwidth=4.0, arrivals=2.0)
    lo, hi = feasible_ratio_interval(device, partition, 1.0, 2.0)
    budget = device.link.bandwidth * (1.0 - device.link.latency)
    for x in (lo, (lo + hi) / 2, hi):
        load = (
            x * 2.0 * partition.d0
            + (1 - x) * 2.0 * (1 - partition.sigma1) * partition.d1
        )
        assert load <= budget * (1 + 1e-9)


def test_feasible_interval_rejects_negative_arrivals(partition):
    with pytest.raises(ValueError):
        feasible_ratio_interval(_device(), partition, 1.0, -1.0)


# -- slot cost -----------------------------------------------------------------


def test_slot_cost_zero_arrivals(partition):
    system = _system(partition)
    cost = slot_cost(system.devices[0], system, 0.5, 0.0, 0.0, 0.0, 0.5)
    assert cost.y == 0.0
    assert cost.tail == 0.0
    assert cost.mean_tct == 0.0


def test_slot_cost_all_local_has_no_edge_terms(partition):
    system = _system(partition)
    cost = slot_cost(system.devices[0], system, 0.0, 2.0, 0.0, 0.0, 0.5)
    assert cost.t_edge == 0.0
    assert cost.offloaded_tasks == 0.0
    assert cost.t_device > 0.0


def test_slot_cost_all_offloaded_has_no_local_terms(partition):
    system = _system(partition)
    cost = slot_cost(system.devices[0], system, 1.0, 2.0, 0.0, 0.0, 0.5)
    assert cost.t_device == 0.0
    assert cost.local_tasks == 0.0
    assert cost.t_edge > 0.0


def test_slot_cost_queue_backlog_increases_cost(partition):
    system = _system(partition)
    empty = slot_cost(system.devices[0], system, 0.0, 2.0, 0.0, 0.0, 0.5)
    backed = slot_cost(system.devices[0], system, 0.0, 2.0, 5.0, 0.0, 0.5)
    assert backed.y > empty.y


def test_slot_cost_tail_is_policy_independent(partition):
    system = _system(partition)
    a = slot_cost(system.devices[0], system, 0.0, 2.0, 0.0, 0.0, 0.5)
    b = slot_cost(system.devices[0], system, 1.0, 2.0, 0.0, 0.0, 0.5)
    # Same arrivals → same number of survivors → similar tail; the second
    # block share differs with x (Eq. 9), so only the cloud part is equal.
    assert a.tail > 0 and b.tail > 0


def test_slot_cost_validation(partition):
    system = _system(partition)
    with pytest.raises(ValueError):
        slot_cost(system.devices[0], system, 1.5, 1.0, 0.0, 0.0, 0.5)
    with pytest.raises(ValueError):
        slot_cost(system.devices[0], system, 0.5, -1.0, 0.0, 0.0, 0.5)


def test_slot_cost_includes_overheads(partition):
    base_device = _device()
    slow_device = DeviceConfig(
        name="pi-slow",
        flops=base_device.flops,
        link=base_device.link,
        mean_arrivals=base_device.mean_arrivals,
        overhead=base_device.overhead + 0.5,
    )
    system = _system(partition, devices=(base_device, _device()))
    fast = slot_cost(base_device, system, 0.0, 1.0, 0.0, 0.0, 0.5)
    slow = slot_cost(slow_device, system, 0.0, 1.0, 0.0, 0.0, 0.5)
    assert slow.y > fast.y
    assert slow.service_local < fast.service_local


# -- Lyapunov state ------------------------------------------------------------


def test_lyapunov_update_matches_eq10_11(partition):
    system = _system(partition)
    state = LyapunovState.zeros(2)
    cost = slot_cost(system.devices[0], system, 0.4, 3.0, 0.0, 0.0, 0.5)
    state.update(0, cost)
    assert state.queue_local[0] == pytest.approx(
        max(0.0 - cost.service_local, 0.0) + cost.local_tasks
    )
    assert state.queue_edge[0] == pytest.approx(
        max(0.0 - cost.service_edge, 0.0) + cost.offloaded_tasks
    )


def test_lyapunov_value_and_backlog():
    state = LyapunovState(queue_local=[3.0, 4.0], queue_edge=[0.0, 2.0])
    assert state.lyapunov_value() == pytest.approx(0.5 * (9 + 16 + 0 + 4))
    assert state.total_backlog() == pytest.approx(9.0)


def test_queues_never_negative(partition):
    system = _system(partition)
    state = LyapunovState.zeros(2)
    for slot in range(50):
        for i in range(2):
            cost = slot_cost(
                system.devices[i],
                system,
                0.5,
                float(slot % 3),
                state.queue_local[i],
                state.queue_edge[i],
                system.shares[i],
            )
            state.update(i, cost)
            assert state.queue_local[i] >= 0.0
            assert state.queue_edge[i] >= 0.0


# -- policies ------------------------------------------------------------------


def test_policies_return_feasible_ratios(partition):
    system = _system(partition)
    state = LyapunovState.zeros(2)
    arrivals = [1.5, 0.5]
    for policy in (
        DriftPlusPenaltyPolicy(v=50),
        BalanceOffloadingPolicy(),
        FixedRatioPolicy(0.7),
        CapabilityBasedPolicy(),
    ):
        ratios = policy.decide(system, state, arrivals)
        assert len(ratios) == 2
        for i, x in enumerate(ratios):
            lo, hi = feasible_ratio_interval(
                system.devices[i], partition, 1.0, arrivals[i]
            )
            assert lo - 1e-9 <= x <= hi + 1e-9


def test_unconstrained_fixed_policy_ignores_feasibility(partition):
    system = _system(partition)
    state = LyapunovState.zeros(2)
    policy = FixedRatioPolicy(0.0, respect_constraint=False)
    assert policy.decide(system, state, [100.0, 100.0]) == [0.0, 0.0]


def test_fixed_policy_validation():
    with pytest.raises(ValueError):
        FixedRatioPolicy(1.5)


def test_dpp_policy_validation():
    with pytest.raises(ValueError):
        DriftPlusPenaltyPolicy(v=-1.0)


def test_dpp_minimises_objective_on_grid(partition):
    """The policy's choice must (weakly) beat every grid ratio under the
    Eq. 19 objective."""
    system = _system(partition)
    state = LyapunovState(queue_local=[2.0, 0.0], queue_edge=[1.0, 0.0])
    policy = DriftPlusPenaltyPolicy(v=50)
    arrivals = [1.0, 1.0]
    ratios = policy.decide(system, state, arrivals)

    def objective(x: float) -> float:
        cost = slot_cost(
            system.devices[0],
            system,
            x,
            arrivals[0],
            state.queue_local[0],
            state.queue_edge[0],
            system.shares[0],
            include_tail=False,
        )
        return drift_plus_penalty(cost, 2.0, 1.0, 50)

    lo, hi = feasible_ratio_interval(system.devices[0], partition, 1.0, 1.0)
    best_grid = min(
        objective(lo + (hi - lo) * i / 100) for i in range(101)
    )
    assert objective(ratios[0]) <= best_grid + 1e-6 * (1 + abs(best_grid))


def test_grid_refine_handles_degenerate_interval():
    """``_grid_refine_minimum`` on a collapsed bracket returns ``lo``
    without evaluating a zero-width grid (regression: ``lo == hi`` used to
    feed ``step == 0`` into the refinement rounds)."""
    from repro.core.offloading import _grid_refine_minimum

    calls = []

    def objective(x: float) -> float:
        calls.append(x)
        return (x - 0.3) ** 2

    assert _grid_refine_minimum(objective, 0.0, 0.0) == 0.0
    assert _grid_refine_minimum(objective, 0.7, 0.7) == 0.7
    assert calls == []  # degenerate brackets short-circuit entirely
    # A non-degenerate bracket still refines toward the true minimum.
    assert _grid_refine_minimum(objective, 0.0, 1.0) == pytest.approx(
        0.3, abs=1e-3
    )


def test_saturated_uplink_forces_full_local(partition):
    """A hop whose latency eats the whole slot admits only x = 0 (Eq. 8's
    degenerate case); both DPP paths must return exactly 0.0 rather than
    probe an empty interval."""
    # slot_length is 1.0 s; a 1500 ms latency makes the budget negative.
    saturated = _device(bandwidth=10.0, latency=1500.0, arrivals=1.0)
    system = _system(partition, devices=(saturated, _device()))
    lo, hi = feasible_ratio_interval(saturated, partition, 1.0, 1.0)
    assert (lo, hi) == (0.0, 0.0)
    state = LyapunovState(queue_local=[5.0, 1.0], queue_edge=[2.0, 1.0])
    for vectorized in (False, True):
        policy = DriftPlusPenaltyPolicy(v=50, vectorized=vectorized)
        ratios = policy.decide(system, state, [1.0, 0.5])
        assert ratios[0] == 0.0
        assert 0.0 <= ratios[1] <= 1.0


def test_balance_policy_balances_costs(partition):
    """At the balance point, T^d ≈ T^e (unless clamped at a boundary)."""
    system = _system(partition)
    state = LyapunovState.zeros(2)
    policy = BalanceOffloadingPolicy()
    arrivals = [2.0, 2.0]
    ratios = policy.decide(system, state, arrivals)
    x = ratios[0]
    lo, hi = feasible_ratio_interval(system.devices[0], partition, 1.0, 2.0)
    cost = slot_cost(
        system.devices[0], system, x, 2.0, 0.0, 0.0, system.shares[0],
        include_tail=False,
    )
    if lo < x < hi:
        assert cost.t_device == pytest.approx(cost.t_edge, rel=1e-3)


def test_balance_policy_zero_arrivals_stays_local(partition):
    system = _system(partition)
    state = LyapunovState.zeros(2)
    ratios = BalanceOffloadingPolicy().decide(system, state, [0.0, 0.0])
    assert ratios == [0.0, 0.0]


def test_capability_policy_prefers_edge_for_weak_device(partition):
    system = _system(partition)
    state = LyapunovState.zeros(2)
    ratios = CapabilityBasedPolicy().decide(system, state, [0.5, 0.5])
    # The edge slice is far faster than a Pi, so the static rule offloads
    # most tasks.
    assert ratios[0] > 0.5


@settings(max_examples=30, deadline=None)
@given(
    x=st.floats(min_value=0.0, max_value=1.0),
    arrivals=st.floats(min_value=0.0, max_value=10.0),
    q=st.floats(min_value=0.0, max_value=50.0),
    h=st.floats(min_value=0.0, max_value=50.0),
)
def test_slot_cost_always_finite_and_nonnegative(x, arrivals, q, h, partition):
    system = _system(partition)
    cost = slot_cost(system.devices[0], system, x, arrivals, q, h, 0.5)
    assert cost.y >= 0.0
    assert cost.tail >= 0.0
    assert cost.total_time < float("inf")
    assert cost.service_local >= 0.0
    assert cost.service_edge >= 0.0

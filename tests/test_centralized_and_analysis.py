"""Centralized P1' solver and the analysis (theorem-verification) module."""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    measure_queue_stability,
    measure_search_complexity,
    measure_v_tradeoff,
)
from repro.core.centralized import CentralizedDriftPlusPenaltyPolicy
from repro.core.offloading import (
    DriftPlusPenaltyPolicy,
    LyapunovState,
    drift_plus_penalty,
    slot_cost,
)


def _objective(system, state, arrivals, ratios, v=50.0):
    total = 0.0
    for i in range(system.num_devices):
        cost = slot_cost(
            system.devices[i],
            system,
            ratios[i],
            arrivals[i],
            state.queue_local[i],
            state.queue_edge[i],
            system.shares[i],
            include_tail=False,
        )
        total += drift_plus_penalty(
            cost, state.queue_local[i], state.queue_edge[i], v
        )
    return total


def test_centralized_matches_decentralized(small_system):
    """P1' separates across devices once the shares are fixed, so the
    centralized scipy solve and the per-device exact policy agree."""
    state = LyapunovState(queue_local=[2.0, 0.5], queue_edge=[1.0, 0.0])
    arrivals = [1.2, 0.8]
    central = CentralizedDriftPlusPenaltyPolicy(v=50.0).decide(
        small_system, state, arrivals
    )
    decentral = DriftPlusPenaltyPolicy(v=50.0).decide(
        small_system, state, arrivals
    )
    value_central = _objective(small_system, state, arrivals, central)
    value_decentral = _objective(small_system, state, arrivals, decentral)
    assert value_decentral <= value_central + 1e-6 * (1 + abs(value_central))


def test_centralized_respects_bounds(small_system):
    state = LyapunovState.zeros(2)
    ratios = CentralizedDriftPlusPenaltyPolicy(v=50.0).decide(
        small_system, state, [0.5, 0.5]
    )
    assert all(0.0 <= x <= 1.0 for x in ratios)


def test_centralized_validation():
    with pytest.raises(ValueError):
        CentralizedDriftPlusPenaltyPolicy(v=-1.0)
    with pytest.raises(ValueError):
        CentralizedDriftPlusPenaltyPolicy(restarts=-1)


def test_search_complexity_bb_fits_mlogm():
    fit = measure_search_complexity(
        chain_lengths=(6, 10, 16, 24, 36),
        instances_per_length=15,
        search="branch-and-bound",
    )
    # Theorem 2: the m·ln m model explains the counts well.
    assert fit.r_squared > 0.9
    assert fit.coefficient > 0


def test_search_complexity_brute_force_is_quadratic():
    fit = measure_search_complexity(
        chain_lengths=(6, 10, 16, 24, 36),
        instances_per_length=5,
        search="brute-force",
    )
    assert fit.r_squared > 0.999  # deterministic (m-1)(m-2)/2 + (m-2)
    assert fit.coefficient == pytest.approx(0.5, rel=0.1)


def test_search_complexity_bb_beats_brute_force():
    bb = measure_search_complexity(
        chain_lengths=(36, 48), instances_per_length=10, search="branch-and-bound"
    )
    brute = measure_search_complexity(
        chain_lengths=(36, 48), instances_per_length=2, search="brute-force"
    )
    assert bb.mean_evaluations[-1] < brute.mean_evaluations[-1] / 2


def test_search_complexity_validation():
    with pytest.raises(ValueError):
        measure_search_complexity(search="genetic")


def test_v_tradeoff_directions(small_system):
    """Theorem 3: delay non-increasing and backlog non-decreasing in V
    (up to simulation noise at the extremes)."""
    points = measure_v_tradeoff(
        small_system, v_values=(0.1, 10.0, 1000.0), num_slots=200,
        arrival_rate=0.8,
    )
    assert points[-1].mean_tct <= points[0].mean_tct * 1.05
    assert points[-1].max_backlog >= points[0].max_backlog * 0.95


def test_queue_stability_under_policy(small_system):
    report = measure_queue_stability(
        small_system, num_slots=300, arrival_rate=0.8
    )
    # C3/C4: backlog growth per slot vanishes for a stabilising policy.
    assert report["backlog_per_slot"] < 0.1
    assert report["mean_tct"] > 0

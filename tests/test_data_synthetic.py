"""The synthetic dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    Dataset,
    SyntheticImageDataset,
    chunk_boundaries,
    train_val_test_split,
)


def test_chunk_boundaries_cover_dim():
    bounds = chunk_boundaries(64, 8)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == 64
    assert all(b[1] == n[0] for b, n in zip(bounds, bounds[1:]))


def test_chunk_boundaries_uneven():
    bounds = chunk_boundaries(10, 3)
    assert sum(stop - start for start, stop in bounds) == 10
    with pytest.raises(ValueError):
        chunk_boundaries(2, 3)
    with pytest.raises(ValueError):
        chunk_boundaries(10, 0)


def test_dataset_validation():
    with pytest.raises(ValueError):
        Dataset(
            x=np.zeros((3, 4)), y=np.zeros(2, dtype=int), hard=np.zeros(3, bool)
        )
    with pytest.raises(ValueError):
        Dataset(x=np.zeros(4), y=np.zeros(4, dtype=int), hard=np.zeros(4, bool))


def test_sample_shapes_and_reproducibility():
    gen = SyntheticImageDataset()
    a = gen.sample(100, seed=5)
    b = gen.sample(100, seed=5)
    assert len(a) == 100
    assert a.dim == gen.dim
    assert np.array_equal(a.x, b.x)
    assert np.array_equal(a.y, b.y)


def test_different_seeds_differ():
    gen = SyntheticImageDataset()
    a = gen.sample(100, seed=1)
    b = gen.sample(100, seed=2)
    assert not np.array_equal(a.x, b.x)


def test_hard_fraction_controls_mixture():
    gen = SyntheticImageDataset(hard_fraction=0.8)
    data = gen.sample(4000, seed=0)
    assert data.hard.mean() == pytest.approx(0.8, abs=0.03)
    all_easy = SyntheticImageDataset(hard_fraction=0.0).sample(100, seed=0)
    assert not all_easy.hard.any()


def test_easy_signal_confined_to_support_chunks():
    gen = SyntheticImageDataset(
        hard_fraction=0.0, noise=0.0, label_noise=0.0, distractor_fraction=0.0
    )
    data = gen.sample(200, seed=0)
    easy_dims = gen.easy_support * gen.chunk_dim
    tail = data.x[:, easy_dims:]
    assert np.abs(tail).max() == pytest.approx(0.0, abs=1e-12)


def test_hard_signal_spreads_everywhere():
    gen = SyntheticImageDataset(hard_fraction=1.0, noise=0.0, label_noise=0.0)
    data = gen.sample(200, seed=0)
    tail_energy = np.abs(data.x[:, gen.easy_support * gen.chunk_dim :]).sum()
    assert tail_energy > 0


def test_distractors_add_late_chunk_energy():
    base = dict(hard_fraction=0.0, noise=0.0, label_noise=0.0)
    clean = SyntheticImageDataset(distractor_fraction=0.0, **base).sample(500, seed=3)
    dirty = SyntheticImageDataset(distractor_fraction=1.0, **base).sample(500, seed=3)
    gen = SyntheticImageDataset(**base)
    easy_dims = gen.easy_support * gen.chunk_dim
    assert np.abs(dirty.x[:, easy_dims:]).sum() > np.abs(clean.x[:, easy_dims:]).sum()


def test_validation_errors():
    with pytest.raises(ValueError):
        SyntheticImageDataset(num_classes=1)
    with pytest.raises(ValueError):
        SyntheticImageDataset(hard_fraction=1.5)
    with pytest.raises(ValueError):
        SyntheticImageDataset(easy_support=0)
    with pytest.raises(ValueError):
        SyntheticImageDataset(label_noise=1.0)
    with pytest.raises(ValueError):
        SyntheticImageDataset(distractor_strength=-1.0)
    with pytest.raises(ValueError):
        SyntheticImageDataset(
            easy_support=8, num_chunks=8, distractor_fraction=0.5
        )
    gen = SyntheticImageDataset()
    with pytest.raises(ValueError):
        gen.sample(0)


def test_split_partitions_disjointly():
    data = SyntheticImageDataset().sample(1000, seed=0)
    train, val, test = train_val_test_split(data, 0.2, 0.1, seed=1)
    assert len(train) + len(val) + len(test) == 1000
    assert len(val) == 200
    assert len(test) == 100
    with pytest.raises(ValueError):
        train_val_test_split(data, 0.6, 0.5)


def test_split_is_seeded():
    data = SyntheticImageDataset().sample(500, seed=0)
    a = train_val_test_split(data, seed=3)[0]
    b = train_val_test_split(data, seed=3)[0]
    assert np.array_equal(a.x, b.x)

"""MultiExitDNN partitioning and selection invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.models.exit_rates import ParametricExitCurve
from repro.models.multi_exit import ExitSelection, MultiExitDNN, PartitionedModel
from repro.models.zoo import build_model


@pytest.fixture(scope="module")
def me_dnn():
    return MultiExitDNN(build_model("inception-v3"))


def test_selection_ordering_enforced():
    with pytest.raises(ValueError):
        ExitSelection(first=5, second=5, third=16)
    with pytest.raises(ValueError):
        ExitSelection(first=0, second=5, third=16)
    with pytest.raises(ValueError):
        ExitSelection(first=6, second=5, third=16)


def test_third_exit_fixed_at_m(me_dnn):
    with pytest.raises(ValueError, match="fixed"):
        me_dnn.partition(ExitSelection(1, 2, 15))


def test_partition_block_flops_cover_backbone(me_dnn):
    profile = me_dnn.profile
    partition = me_dnn.partition_at(5, 14)
    head_flops = (
        profile.exit(5).flops + profile.exit(14).flops + profile.exit(16).flops
    )
    assert sum(partition.block_flops) == pytest.approx(
        profile.total_flops + head_flops
    )


def test_partition_transfer_bytes(me_dnn):
    partition = me_dnn.partition_at(5, 14)
    profile = me_dnn.profile
    assert partition.d0 == profile.input_bytes
    assert partition.d1 == profile.intermediate_bytes(5)
    assert partition.d2 == profile.intermediate_bytes(14)


def test_partition_sigma_ordering(me_dnn):
    partition = me_dnn.partition_at(3, 10)
    assert 0 <= partition.sigma1 <= partition.sigma2 <= 1.0
    assert partition.sigma[2] == 1.0


def test_expected_flops_less_than_total_with_early_exits(me_dnn):
    partition = me_dnn.partition_at(5, 14)
    assert partition.expected_flops_per_task < sum(partition.block_flops)


def test_exit_rate_bounds(me_dnn):
    with pytest.raises(ValueError):
        me_dnn.exit_rate(0)
    with pytest.raises(ValueError):
        me_dnn.exit_rate(me_dnn.num_exits + 1)
    assert me_dnn.exit_rate(me_dnn.num_exits) == 1.0


def test_candidate_selections_count(me_dnn):
    m = me_dnn.num_exits
    candidates = me_dnn.candidate_selections()
    assert len(candidates) == (m - 2) * (m - 1) // 2
    assert all(c.third == m for c in candidates)
    assert len(set(c.as_tuple() for c in candidates)) == len(candidates)


def test_partitioned_model_validation():
    selection = ExitSelection(1, 2, 3)
    with pytest.raises(ValueError):
        PartitionedModel(
            name="bad",
            selection=selection,
            block_flops=(-1.0, 1.0, 1.0),
            transfer_bytes=(1, 1, 1),
            sigma=(0.1, 0.5, 1.0),
        )
    with pytest.raises(ValueError):
        PartitionedModel(
            name="bad",
            selection=selection,
            block_flops=(1.0, 1.0, 1.0),
            transfer_bytes=(1, 1, 1),
            sigma=(0.5, 0.1, 1.0),
        )
    with pytest.raises(ValueError):
        PartitionedModel(
            name="bad",
            selection=selection,
            block_flops=(1.0, 1.0, 1.0),
            transfer_bytes=(1, 1, 1),
            sigma=(0.1, 0.5, 0.9),
        )


@given(
    first=st.integers(min_value=1, max_value=14),
    second=st.integers(min_value=2, max_value=15),
    complexity=st.floats(min_value=0.0, max_value=1.0),
)
def test_partition_invariants_random(first, second, complexity):
    """Any valid selection of any complexity yields a consistent partition."""
    if second <= first:
        return
    me_dnn = MultiExitDNN(
        build_model("inception-v3"),
        ParametricExitCurve.from_complexity(complexity),
    )
    partition = me_dnn.partition_at(first, second)
    assert all(f >= 0 for f in partition.block_flops)
    assert partition.sigma1 <= partition.sigma2 <= 1.0
    assert partition.expected_flops_per_task <= sum(partition.block_flops) + 1e-6

"""Exit-rate curves: monotonicity, pinning, isotonic projection."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.models.exit_rates import (
    EmpiricalExitCurve,
    ParametricExitCurve,
    UniformExitCurve,
    isotonic_projection,
)
from repro.models.zoo import build_model


@pytest.fixture(scope="module")
def profile():
    return build_model("inception-v3")


def test_parametric_rates_monotone_and_terminal(profile):
    for a in (0.25, 1.0, 4.0):
        curve = ParametricExitCurve(a=a)
        rates = curve.rates(profile)
        assert len(rates) == profile.num_layers
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        assert rates[-1] == 1.0


def test_parametric_complexity_ordering(profile):
    """Easier data exits earlier at every depth."""
    easy = ParametricExitCurve.from_complexity(0.1).rates(profile)
    hard = ParametricExitCurve.from_complexity(0.9).rates(profile)
    assert all(e >= h for e, h in zip(easy[:-1], hard[:-1]))
    assert easy[0] > hard[0]


def test_parametric_flops_basis_differs_from_index(profile):
    by_index = ParametricExitCurve(basis="index").rates(profile)
    by_flops = ParametricExitCurve(basis="flops").rates(profile)
    assert by_index != by_flops
    # Inception's compute is back-loaded, so the flops basis must give the
    # early exits lower rates.
    assert by_flops[0] < by_index[0]


def test_parametric_validation():
    with pytest.raises(ValueError):
        ParametricExitCurve(a=0.0)
    with pytest.raises(ValueError):
        ParametricExitCurve(basis="depthness")
    with pytest.raises(ValueError):
        ParametricExitCurve.from_complexity(1.5)
    with pytest.raises(ValueError):
        ParametricExitCurve().rate_at(1.2)


def test_uniform_curve(profile):
    rates = UniformExitCurve().rates(profile)
    m = profile.num_layers
    assert rates[0] == pytest.approx(1 / m)
    assert rates[-1] == 1.0


def test_empirical_curve_length_check(profile):
    curve = EmpiricalExitCurve.from_measurements([0.5, 1.0])
    with pytest.raises(ValueError):
        curve.rates(profile)


def test_empirical_curve_monotone_projection(profile):
    noisy = [0.3, 0.2, 0.5, 0.45] + [0.6] * (profile.num_layers - 5) + [1.0]
    curve = EmpiricalExitCurve.from_measurements(noisy)
    rates = curve.rates(profile)
    assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))
    assert rates[-1] == 1.0


def test_isotonic_projection_known_case():
    assert isotonic_projection([1.0, 3.0, 2.0]) == [1.0, 2.5, 2.5]


def test_isotonic_projection_already_monotone():
    values = [0.1, 0.2, 0.3]
    assert isotonic_projection(values) == values


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_isotonic_projection_properties(values):
    projected = isotonic_projection(values)
    assert len(projected) == len(values)
    assert all(b >= a - 1e-12 for a, b in zip(projected, projected[1:]))
    # Projection preserves the mean (block means replace block values).
    assert sum(projected) == pytest.approx(sum(values), abs=1e-9)


@given(st.floats(min_value=0.05, max_value=0.95))
def test_pinned_first_exit_curve_hits_target(sigma1):
    from repro.experiments.common import pinned_first_exit_curve

    profile = build_model("squeezenet-1.0")
    rates = pinned_first_exit_curve(profile, sigma1).rates(profile)
    assert rates[0] == pytest.approx(sigma1, abs=1e-9)
    assert rates[-1] == 1.0
    assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))

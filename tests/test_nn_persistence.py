"""Model save/load round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticImageDataset
from repro.nn.calibration import CalibrationResult
from repro.nn.multi_exit_net import MultiExitMLP
from repro.nn.persistence import load_model, save_model


@pytest.fixture()
def small_net():
    return MultiExitMLP(input_dim=24, num_classes=5, num_stages=3, hidden=8, seed=3)


def test_roundtrip_preserves_outputs(small_net, tmp_path):
    x = np.random.default_rng(0).normal(size=(6, 24)).astype(np.float64)
    before = small_net.forward_all(x)
    path = save_model(small_net, tmp_path / "model.npz")
    loaded, calibration = load_model(path)
    after = loaded.forward_all(x)
    assert calibration is None
    for a, b in zip(before, after):
        assert np.allclose(a, b)


def test_roundtrip_with_hidden_heads(tmp_path):
    net = MultiExitMLP(
        input_dim=24, num_classes=5, num_stages=3, hidden=8, exit_hidden=6, seed=1
    )
    x = np.random.default_rng(1).normal(size=(4, 24))
    path = save_model(net, tmp_path / "model.npz")
    loaded, _ = load_model(path)
    for a, b in zip(net.forward_all(x), loaded.forward_all(x)):
        assert np.allclose(a, b)


def test_roundtrip_with_calibration(small_net, tmp_path):
    calibration = CalibrationResult(
        thresholds=(0.7, 0.8, 0.0),
        exit_rates=(0.3, 0.6, 1.0),
        release_rates=(0.3, 0.5, 1.0),
        standalone_accuracy=(0.5, 0.6, 0.7),
        reference_accuracy=0.7,
    )
    path = save_model(small_net, tmp_path / "m.npz", calibration=calibration)
    _, loaded_cal = load_model(path)
    assert loaded_cal == calibration


def test_roundtrip_preserves_loss_weights(tmp_path):
    net = MultiExitMLP(
        input_dim=24,
        num_classes=5,
        num_stages=3,
        hidden=8,
        loss_weights=[0.5, 1.0, 2.0],
    )
    path = save_model(net, tmp_path / "m.npz")
    loaded, _ = load_model(path)
    assert loaded.loss_weights == (0.5, 1.0, 2.0)


def test_load_rejects_wrong_format(small_net, tmp_path):
    import json

    path = save_model(small_net, tmp_path / "m.npz")
    data = dict(np.load(path, allow_pickle=False))
    meta = json.loads(str(data["meta"]))
    meta["format_version"] = 99
    data["meta"] = json.dumps(meta)
    np.savez_compressed(path, **data)
    with pytest.raises(ValueError, match="unsupported"):
        load_model(path)


def test_loaded_model_is_trainable(small_net, tmp_path):
    """A loaded model can continue training (grads flow)."""
    gen = SyntheticImageDataset(num_chunks=3, chunk_dim=8, num_classes=5)
    data = gen.sample(64, seed=0)
    path = save_model(small_net, tmp_path / "m.npz")
    loaded, _ = load_model(path)
    loss_before = loaded.train_batch(data.x, data.y)
    assert np.isfinite(loss_before)
    assert any(np.abs(g).sum() > 0 for g in loaded.grads())

"""The chaos campaign: sampling, oracles, shrinking, and the CLI verbs."""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    ChaosSpec,
    run_campaign,
    run_case,
    sample_case,
    shrink_case,
    render_markdown,
    write_reports,
)
from repro.chaos.campaign import CAMPAIGN_SCHEMA_VERSION, LEVELS
from repro.cli import main


def test_sampling_is_deterministic_and_in_range():
    spec = ChaosSpec(seed=7, num_samples=40)
    for index in range(40):
        a = sample_case(spec, index)
        b = sample_case(spec, index)
        assert a == b
        assert a["level"] in LEVELS
        assert 2 <= a["num_devices"] <= spec.max_devices
        assert spec.min_slots <= a["num_slots"] <= spec.max_slots
        assert 1 <= a["kill_slot"] < a["num_slots"]
    # Different indices differ (the fuzzer is not degenerate).
    assert sample_case(spec, 0) != sample_case(spec, 1)


def test_spec_validation():
    with pytest.raises(ValueError):
        ChaosSpec(num_samples=0)
    with pytest.raises(ValueError):
        ChaosSpec(min_slots=10, max_slots=4)
    with pytest.raises(ValueError, match="unknown levels"):
        ChaosSpec(levels=("fluid", "warp"))


def test_small_campaign_is_clean_and_reproducible():
    """The acceptance shape in miniature: every sampled case passes every
    oracle, and a rerun of the same spec is byte-identical."""
    spec = ChaosSpec(seed=11, num_samples=9)
    first = run_campaign(spec)
    assert first["clean"] == first["samples"] == 9
    assert not first["violating_cases"]
    assert sum(first["level_counts"].values()) == 9
    second = run_campaign(spec)
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_every_level_runs_clean():
    """Force one case per level (the uniform draw can starve a level in a
    tiny campaign)."""
    for level in LEVELS:
        spec = ChaosSpec(seed=5, num_samples=4, levels=(level,))
        report = run_campaign(spec)
        assert report["clean"] == 4, (level, report["violating_cases"])


def test_shrink_minimises_with_fake_runner():
    """Shrinking strips slots, devices, and fault layers while the
    violation persists — driven by a fake runner so the path is pinned
    without needing a real engine bug."""
    spec = ChaosSpec(seed=0, num_samples=1)
    case = dict(
        sample_case(spec, 0),
        num_slots=12,
        num_devices=4,
        kill_slot=7,
        overload=True,
        faults=True,
        control_faults=True,
        arrivals="poisson",
        policy="dpp",
    )

    def fake_runner(candidate):
        # The "bug" needs >= 2 devices and the control-fault layer.
        broken = candidate["num_devices"] >= 2 and candidate["control_faults"]
        return {
            "index": candidate["index"],
            "level": candidate["level"],
            "case": dict(candidate),
            "violations": ["fake: still broken"] if broken else [],
        }

    shrunk, result = shrink_case(case, runner=fake_runner)
    assert result["violations"] == ["fake: still broken"]
    # Everything irrelevant to the fake bug got stripped...
    assert shrunk["num_slots"] == 4
    assert shrunk["kill_slot"] == 1
    assert shrunk["overload"] is False
    assert shrunk["faults"] is False
    assert shrunk["arrivals"] == "constant"
    assert shrunk["policy"] == "fixed"
    # ...while the load-bearing knobs survived at their minimum.
    assert shrunk["num_devices"] == 2
    assert shrunk["control_faults"] is True


def test_shrink_returns_clean_case_unchanged():
    case = sample_case(ChaosSpec(seed=0, num_samples=1), 0)

    def clean_runner(candidate):
        return {"index": 0, "level": candidate["level"], "case": candidate,
                "violations": []}

    shrunk, result = shrink_case(case, runner=clean_runner)
    assert shrunk == dict(case)
    assert not result["violations"]


def test_reports_render_and_round_trip(tmp_path):
    report = run_campaign(ChaosSpec(seed=2, num_samples=3))
    json_path = tmp_path / "chaos.json"
    md_path = tmp_path / "chaos.md"
    written = write_reports(report, json_path, md_path)
    assert written == [json_path, md_path]
    loaded = json.loads(json_path.read_text())
    assert loaded["format"] == "repro-chaos-report"
    assert loaded["schema_version"] == CAMPAIGN_SCHEMA_VERSION
    assert loaded["fingerprint"] == report["fingerprint"]
    markdown = md_path.read_text()
    assert "All invariant oracles held" in markdown
    assert report["fingerprint"] in markdown


def test_markdown_lists_violations():
    report = {
        "spec": {"seed": 0},
        "samples": 2,
        "clean": 1,
        "level_counts": {"event": 2},
        "fingerprint": "abc",
        "violating_cases": [
            {
                "index": 1,
                "level": "event",
                "case": {"index": 1, "seed": 5},
                "violations": ["event conservation: generated 3 != ..."],
            }
        ],
    }
    markdown = render_markdown(report)
    assert "### case 1 (event)" in markdown
    assert "event conservation" in markdown


def test_unknown_level_is_a_violation():
    result = run_case({"index": 0, "level": "warp"})
    assert result["violations"] == ["unknown level 'warp'"]


# -- CLI ---------------------------------------------------------------------


def test_cli_chaos_run_and_report(tmp_path, capsys):
    artifact = tmp_path / "chaos.json"
    digest = tmp_path / "chaos.md"
    code = main(
        [
            "chaos", "run", "--samples", "4", "--seed", "1",
            "--output", str(artifact), "--report", str(digest), "--quiet",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "all held" in out
    assert artifact.exists() and digest.exists()

    assert main(["chaos", "report", str(artifact)]) == 0
    assert "# Chaos campaign report" in capsys.readouterr().out


def test_cli_chaos_report_strict_exit_codes(tmp_path, capsys):
    report = run_campaign(ChaosSpec(seed=2, num_samples=2))
    # Doctor the artifact into a violating one: strict mode must go red,
    # --no-strict stays green.
    report = json.loads(json.dumps(report))
    report["clean"] = 1
    report["violating_cases"] = [
        {"index": 0, "level": "event", "case": {}, "violations": ["boom"]}
    ]
    artifact = tmp_path / "bad.json"
    artifact.write_text(json.dumps(report))
    assert main(["chaos", "report", str(artifact)]) == 1
    assert main(["chaos", "report", "--no-strict", str(artifact)]) == 0
    capsys.readouterr()


def test_cli_chaos_report_rejects_foreign_and_misversioned(tmp_path, capsys):
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"benchmark": "something-else"}))
    assert main(["chaos", "report", str(foreign)]) == 2

    stale = tmp_path / "stale.json"
    stale.write_text(
        json.dumps({"format": "repro-chaos-report", "schema_version": 99})
    )
    assert main(["chaos", "report", str(stale)]) == 2
    err = capsys.readouterr().err
    assert "refusing to misparse" in err


def test_cli_chaos_replay_clean_case(capsys):
    assert main(["chaos", "replay", "--case", "0", "--seed", "1"]) == 0
    assert "all held" in capsys.readouterr().out

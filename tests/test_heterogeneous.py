"""The per-class exit-setting extension."""

from __future__ import annotations

import pytest

from repro.core.exit_setting import branch_and_bound_exit_setting
from repro.core.heterogeneous import (
    group_devices,
    heterogeneous_system,
    plan_per_class,
)
from repro.core.offloading import DeviceConfig, DriftPlusPenaltyPolicy, EdgeSystem
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    JETSON_NANO,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import build_model
from repro.sim.events import EventSimulator
from repro.sim.arrivals import PoissonArrivals


@pytest.fixture(scope="module")
def mixed_fleet():
    pis = [
        DeviceConfig.from_platform(
            RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 0.2, name=f"pi-{i}"
        )
        for i in range(2)
    ]
    nanos = [
        DeviceConfig.from_platform(
            JETSON_NANO, WIFI_DEVICE_EDGE, 0.5, name=f"nano-{i}"
        )
        for i in range(2)
    ]
    return tuple(pis + nanos)


@pytest.fixture(scope="module")
def me_dnn():
    return MultiExitDNN(build_model("inception-v3"))


def test_group_devices_by_class(mixed_fleet):
    groups = group_devices(mixed_fleet)
    assert len(groups) == 2
    sizes = sorted(len(v) for v in groups.values())
    assert sizes == [2, 2]


def test_plan_per_class_differs_across_classes(me_dnn, mixed_fleet):
    """The whole point: Pis and Nanos get different First-exits
    (Fig. 2(a))."""
    classes = plan_per_class(
        me_dnn,
        mixed_fleet,
        EDGE_I7_3770.flops,
        CLOUD_V100.flops,
        INTERNET_EDGE_CLOUD,
    )
    selections = {
        c.key[0]: c.plan.selection.first for c in classes
    }
    pi_first = selections[RASPBERRY_PI_3B.flops]
    nano_first = selections[JETSON_NANO.flops]
    assert nano_first > pi_first


def test_plan_per_class_requires_devices(me_dnn):
    with pytest.raises(ValueError):
        plan_per_class(
            me_dnn, [], EDGE_I7_3770.flops, CLOUD_V100.flops, INTERNET_EDGE_CLOUD
        )


def test_heterogeneous_system_deploys_per_device(me_dnn, mixed_fleet):
    system = heterogeneous_system(
        me_dnn,
        mixed_fleet,
        EDGE_I7_3770.flops,
        CLOUD_V100.flops,
        INTERNET_EDGE_CLOUD,
    )
    assert len(system.device_partitions) == 4
    # Devices of the same class share a partition object; classes differ.
    assert system.partition_for(0) is system.partition_for(1)
    assert system.partition_for(2) is system.partition_for(3)
    assert system.partition_for(0) is not system.partition_for(2)


def test_partition_for_broadcast_without_override(me_dnn, mixed_fleet):
    partition = me_dnn.partition_at(5, 14)
    system = EdgeSystem(
        devices=mixed_fleet,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=partition,
    )
    assert system.partition_for(3) is partition


def test_device_partitions_length_validated(me_dnn, mixed_fleet):
    partition = me_dnn.partition_at(5, 14)
    with pytest.raises(ValueError):
        EdgeSystem(
            devices=mixed_fleet,
            edge_flops=EDGE_I7_3770.flops,
            cloud_flops=CLOUD_V100.flops,
            edge_cloud=INTERNET_EDGE_CLOUD,
            partition=partition,
            device_partitions=(partition,),
        )


def test_heterogeneous_beats_single_average_partition(me_dnn, mixed_fleet):
    """On a mixed fleet, per-class planning must not lose to the paper's
    single average-device partition (and typically wins)."""
    hetero = heterogeneous_system(
        me_dnn,
        mixed_fleet,
        EDGE_I7_3770.flops,
        CLOUD_V100.flops,
        INTERNET_EDGE_CLOUD,
        edge_overhead=EDGE_I7_3770.per_task_overhead,
        cloud_overhead=CLOUD_V100.per_task_overhead,
    )
    # The paper's deployment: one partition planned against the average
    # device (mean FLOPS across the fleet).
    from repro.core.exit_setting import AverageEnvironment

    mean_flops = sum(d.flops for d in mixed_fleet) / len(mixed_fleet)
    avg_plan = branch_and_bound_exit_setting(
        me_dnn,
        AverageEnvironment(
            device_flops=mean_flops,
            edge_flops=EDGE_I7_3770.flops / len(mixed_fleet),
            cloud_flops=CLOUD_V100.flops,
            device_edge=WIFI_DEVICE_EDGE,
            edge_cloud=INTERNET_EDGE_CLOUD,
        ),
    )
    single = EdgeSystem(
        devices=mixed_fleet,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=avg_plan.partition,
        edge_overhead=EDGE_I7_3770.per_task_overhead,
        cloud_overhead=CLOUD_V100.per_task_overhead,
    )
    arrivals = [PoissonArrivals(d.mean_arrivals) for d in mixed_fleet]
    policy = DriftPlusPenaltyPolicy(v=50.0)
    hetero_tct = EventSimulator(
        system=hetero, arrivals=arrivals, seed=5
    ).run(policy, 120).mean_tct
    single_tct = EventSimulator(
        system=single, arrivals=arrivals, seed=5
    ).run(policy, 120).mean_tct
    assert hetero_tct <= single_tct * 1.05

"""The end-to-end LEIME controller."""

from __future__ import annotations

import pytest

from repro.core.leime import LeimeController
from repro.core.offloading import DeviceConfig, FixedRatioPolicy
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    JETSON_NANO,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import build_model


def _controller(devices=None, **kwargs) -> LeimeController:
    if devices is None:
        devices = [
            DeviceConfig.from_platform(
                RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 0.5, name=f"pi-{i}"
            )
            for i in range(3)
        ]
    return LeimeController(
        me_dnn=MultiExitDNN(build_model("inception-v3")),
        devices=devices,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        **kwargs,
    )


def test_controller_requires_devices():
    with pytest.raises(ValueError):
        _controller(devices=[])


def test_plan_is_cached():
    controller = _controller()
    assert controller.plan() is controller.plan()


def test_partition_matches_bb_search():
    from repro.core.exit_setting import branch_and_bound_exit_setting

    controller = _controller()
    expected = branch_and_bound_exit_setting(
        controller.me_dnn, controller.average_environment()
    )
    assert controller.partition.selection == expected.selection


def test_edge_shares_sum_to_one():
    devices = [
        DeviceConfig.from_platform(RASPBERRY_PI_3B, WIFI_DEVICE_EDGE, 1.0, name="pi"),
        DeviceConfig.from_platform(JETSON_NANO, WIFI_DEVICE_EDGE, 0.2, name="nano"),
    ]
    controller = _controller(devices=devices)
    shares = controller.edge_shares()
    assert sum(shares) == pytest.approx(1.0)
    # The busy, slow Pi needs more edge help than the idle, fast Nano.
    assert shares[0] > shares[1]


def test_system_uses_kkt_shares():
    controller = _controller()
    system = controller.system()
    assert system.shares == tuple(controller.edge_shares())
    assert system.partition is controller.partition


def test_decide_returns_ratio_per_device():
    controller = _controller()
    state = controller.new_state()
    ratios = controller.decide(state, [0.5, 0.5, 0.5])
    assert len(ratios) == 3
    assert all(0.0 <= x <= 1.0 for x in ratios)


def test_custom_policy_is_used():
    controller = _controller(policy=FixedRatioPolicy(0.0))
    state = controller.new_state()
    assert controller.decide(state, [0.5, 0.5, 0.5]) == [0.0, 0.0, 0.0]


def test_average_environment_aggregates_links():
    controller = _controller()
    env = controller.average_environment()
    assert env.device_flops == pytest.approx(RASPBERRY_PI_3B.flops)
    assert env.device_edge.bandwidth == pytest.approx(WIFI_DEVICE_EDGE.bandwidth)

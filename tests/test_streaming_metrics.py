"""Constant-memory streaming metrics: accuracy, mergeability, parity.

Pins the three contracts ``metrics="streaming"`` rests on:

* **Sketch accuracy** — the quantile sketch's estimate is within its
  documented relative-error bound ``alpha`` of the exact order statistic
  at index ``round(q/100 · (n-1))``, on seeded heavy-tail and bimodal
  latency populations.
* **Exact mergeability** — sketch merging is integer bin addition:
  shard-then-merge equals a single-pass sketch bin-for-bin, in any
  association order; :class:`StreamingTaskStats` merge sums every
  counter exactly.
* **Record parity** — on all five execution paths (fluid scalar and
  vectorized, event scalar and fast, the live runtime — plus both
  federated wrappers), a streaming run's aggregates match a record-mode
  run of the identical seeded scenario: counters exactly (the SLO
  conservation identity is exact, not approximate), means to float
  rounding, percentiles within ``alpha``.  Record-only accessors raise
  a loud ``ValueError`` instead of returning empty views.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.offloading import FixedRatioPolicy
from repro.resilience.faults import canonical_outage_plan
from repro.resilience.overload import OverloadControl
from repro.resilience.recovery import RecoveryPolicy
from repro.resilience.slo import slo_summary
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator
from repro.sim.streaming import (
    FluidStreamStats,
    QuantileSketch,
    StreamingTaskStats,
)

from .helpers import random_fleet

SLOTS = 10
N = 3
SEEDS = range(3)
QS = (50.0, 90.0, 99.0)


def _arrivals(system):
    return [PoissonArrivals(d.mean_arrivals) for d in system.devices]


def _order_statistic(values: np.ndarray, q: float) -> float:
    """The exact order statistic the sketch targets (nearest rank at
    ``round(q/100 · (n-1))`` — not numpy's interpolated percentile)."""
    ordered = np.sort(values)
    return float(ordered[int(round(q / 100.0 * (ordered.size - 1)))])


# -- sketch accuracy --------------------------------------------------------


@pytest.mark.parametrize("alpha", [0.01, 0.05])
@pytest.mark.parametrize("shape", ["heavy-tail", "bimodal"])
def test_sketch_accuracy_bound(shape: str, alpha: float) -> None:
    rng = np.random.default_rng(7 if shape == "heavy-tail" else 11)
    if shape == "heavy-tail":
        values = rng.lognormal(mean=0.0, sigma=2.0, size=20_000)
    else:
        values = np.concatenate(
            [
                rng.normal(0.1, 0.01, size=10_000).clip(min=1e-6),
                rng.normal(50.0, 5.0, size=10_000).clip(min=1e-6),
            ]
        )
    sketch = QuantileSketch(alpha=alpha)
    sketch.add_many(values)
    for q in QS + (10.0, 99.9):
        exact = _order_statistic(values, q)
        estimate = sketch.percentile(q)
        assert abs(estimate - exact) <= alpha * exact + 1e-12, (
            shape, alpha, q, exact, estimate,
        )


def test_sketch_scalar_and_vector_ingestion_agree() -> None:
    rng = np.random.default_rng(3)
    values = rng.lognormal(sigma=1.5, size=500)
    one = QuantileSketch()
    many = QuantileSketch()
    for v in values:
        one.add(float(v))
    many.add_many(values)
    assert one.counts == many.counts
    assert one.zero_count == many.zero_count
    assert one.total == many.total


def test_sketch_rejects_negative_and_bad_quantiles() -> None:
    sketch = QuantileSketch()
    with pytest.raises(ValueError):
        sketch.add(-1.0)
    with pytest.raises(ValueError):
        sketch.add_many([1.0, -2.0])
    with pytest.raises(ValueError):
        sketch.percentile(101.0)
    assert math.isnan(sketch.percentile(50.0))  # empty sketch


# -- exact mergeability -----------------------------------------------------


def test_sketch_merge_is_associative_and_matches_single_pass() -> None:
    rng = np.random.default_rng(13)
    values = rng.lognormal(sigma=2.0, size=8_000)
    shards = np.array_split(values, 4)
    sketches = []
    for shard in shards:
        s = QuantileSketch()
        s.add_many(shard)
        sketches.append(s)
    single = QuantileSketch()
    single.add_many(values)
    left = sketches[0].merge(sketches[1]).merge(sketches[2]).merge(sketches[3])
    right = sketches[0].merge(sketches[1].merge(sketches[2].merge(sketches[3])))
    for merged in (left, right):
        assert merged.counts == single.counts
        assert merged.zero_count == single.zero_count
        assert merged.total == single.total
        for q in QS:
            assert merged.percentile(q) == single.percentile(q)


def test_task_stats_merge_sums_every_counter() -> None:
    rng = np.random.default_rng(5)
    shards = []
    for _ in range(3):
        s = StreamingTaskStats()
        n = int(rng.integers(5, 40))
        s.observe_generated(n)
        done = n - 3
        for i in range(done):
            s.observe_completed(
                float(rng.lognormal()), int(rng.integers(1, 4)),
                bool(rng.integers(2)), retries=int(rng.integers(3)),
            )
        s.observe_dropped(retries=2)
        s.observe_shed()
        s.observe_in_flight(1, retries=1)
        assert s.identity_gap == 0
        shards.append(s)
    merged = shards[0].merge(shards[1]).merge(shards[2])
    assert merged.identity_gap == 0
    assert merged.generated == sum(s.generated for s in shards)
    assert merged.completed == sum(s.completed for s in shards)
    assert merged.dropped == sum(s.dropped for s in shards)
    assert merged.shed == sum(s.shed for s in shards)
    assert merged.in_flight == sum(s.in_flight for s in shards)
    assert merged.retries == sum(s.retries for s in shards)
    assert merged.offloaded_completed == sum(
        s.offloaded_completed for s in shards
    )
    assert merged.tct_sum == pytest.approx(sum(s.tct_sum for s in shards))
    assert merged.tct_max == max(s.tct_max for s in shards)
    assert merged.tct_min == min(s.tct_min for s in shards)


# -- record parity: event paths ---------------------------------------------


def _event_runs(seed: int, engine: str):
    system = random_fleet(seed, N, max_arrivals=1.0)
    faults = canonical_outage_plan(SLOTS, N, seed) if seed % 3 == 1 else None
    overload = OverloadControl() if seed % 3 == 2 else None

    def run(metrics: str):
        return EventSimulator(
            system,
            _arrivals(system),
            seed=seed,
            faults=faults,
            recovery=RecoveryPolicy.default() if faults is not None else None,
            overload=overload,
        ).run(
            FixedRatioPolicy(0.5),
            SLOTS,
            drain_limit_factor=100.0,
            engine=engine,
            metrics=metrics,
        )

    return run("records"), run("streaming")


@pytest.mark.parametrize("engine", ["scalar", "fast"])
@pytest.mark.parametrize("seed", SEEDS)
def test_event_streaming_matches_records(engine: str, seed: int) -> None:
    rec, stm = _event_runs(seed, engine)
    assert stm.stats is not None and not stm.tasks
    # Exact counters — and the SLO conservation identity, exactly.
    for attr in ("generated_count", "completed_count", "dropped_count",
                 "shed_count", "in_flight_count", "total_retries"):
        assert getattr(stm, attr) == getattr(rec, attr), attr
    assert stm.stats.identity_gap == 0
    assert stm.generated_count == (
        stm.completed_count + stm.dropped_count + stm.shed_count
        + stm.in_flight_count
    )
    assert stm.modes == rec.modes
    assert stm.horizon == rec.horizon
    # Exact-sum statistics to float rounding.
    if rec.completed_count:
        assert stm.mean_tct == pytest.approx(rec.mean_tct, rel=1e-9)
        assert stm.exit_fractions() == pytest.approx(
            rec.exit_fractions(), rel=1e-12
        )
        assert stm.offloaded_fraction() == pytest.approx(
            rec.offloaded_fraction(), rel=1e-12
        )
        # Sketch percentile within alpha of the targeted order statistic.
        tcts = np.array([t.tct for t in rec.completed])
        alpha = stm.stats.sketch.alpha
        for q in QS:
            exact = _order_statistic(tcts, q)
            assert abs(stm.tct_percentile(q) - exact) <= alpha * exact + 1e-12
    # The summary block works identically in both modes.
    a, b = slo_summary(rec, deadline=5.0), slo_summary(stm, deadline=5.0)
    for key in ("tasks", "completed", "dropped", "shed", "in_flight",
                "total_retries"):
        assert a[key] == b[key], key


def test_streaming_result_refuses_record_accessors() -> None:
    _, stm = _event_runs(0, "fast")
    for accessor in (
        lambda: stm.completed,
        lambda: stm.dropped_tasks,
        lambda: stm.per_device_mean_tct(N),
        lambda: stm.tct_by_creation_slot(0.5, SLOTS),
    ):
        with pytest.raises(ValueError, match="streaming"):
            accessor()


# -- record parity: fluid paths ---------------------------------------------


@pytest.mark.parametrize("vectorized", [False, True])
@pytest.mark.parametrize("seed", SEEDS)
def test_fluid_streaming_matches_records(vectorized: bool, seed: int) -> None:
    system = random_fleet(seed, N, max_arrivals=1.0)
    overload = OverloadControl() if seed % 2 else None

    def run(metrics: str):
        return SlotSimulator(
            system,
            _arrivals(system),
            seed=seed,
            vectorized=vectorized,
            overload=overload,
        ).run(FixedRatioPolicy(0.5), SLOTS, metrics=metrics)

    rec, stm = run("records"), run("streaming")
    assert stm.stream is not None and not stm.records
    assert stm.num_slots == rec.num_slots
    for attr in ("total_arrivals", "total_shed", "total_generated",
                 "mean_tct", "final_backlog", "max_backlog"):
        assert getattr(stm, attr) == pytest.approx(
            getattr(rec, attr), rel=1e-12, abs=1e-12
        ), attr
    assert stm.is_stable() == rec.is_stable()
    with pytest.raises(ValueError, match="streaming"):
        stm.backlog_timeline()


# -- record parity: live runtime --------------------------------------------


def test_runtime_streaming_identity_and_counts() -> None:
    from repro.core.offloading import DriftPlusPenaltyPolicy
    from repro.experiments.common import TestbedConfig, leime_scheme
    from repro.runtime import LeimeRuntime

    config = TestbedConfig(num_devices=2, arrival_rate=0.4)
    system = config.system(leime_scheme(config).partition)

    def run(metrics: str):
        runtime = LeimeRuntime(
            system, DriftPlusPenaltyPolicy(v=50.0), speedup=2000.0, seed=0
        )
        try:
            return runtime.run(
                config.arrival_processes(), num_slots=6, metrics=metrics
            )
        finally:
            assert runtime.shutdown()

    rec, stm = run("records"), run("streaming")
    assert stm.stats is not None and not stm.tasks
    # Generation is control-plane deterministic; completion timing races
    # worker threads, so only the conservation identity and the
    # generated/shed counters are comparable across runs.
    assert stm.generated_count == rec.generated_count
    assert stm.shed_count == rec.shed_count
    assert stm.stats.identity_gap == 0
    assert stm.generated_count == (
        stm.completed_count + stm.dropped_count + stm.shed_count
        + stm.in_flight_count
    )
    with pytest.raises(ValueError, match="streaming"):
        stm.completed


# -- fluid stream odds and ends ---------------------------------------------


def test_fluid_stream_percentile_empty_is_zero() -> None:
    stream = FluidStreamStats()
    assert stream.percentile(95.0) == 0.0
    stream.observe_slot(0, 2.0, 3.0, 0.0, 1.0, 0, half_slot=1)
    assert stream.total_generated == 2.0
    assert stream.mean_tct == pytest.approx(1.5)

"""The wild-trace subsystem: schema, serialization, and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.generators import (
    WildTraceSpec,
    diurnal_series,
    flash_crowd_rates,
    generate_trace,
    gilbert_elliott_bandwidth,
    poisson_churn,
)
from repro.traces.schema import Trace, TraceChannel, TraceValidationError
from repro.traces.serialize import (
    load_jsonl,
    load_npz,
    load_trace,
    save_jsonl,
    save_npz,
    save_trace,
    traces_equal,
)


def _small_trace(num_slots: int = 6, num_devices: int = 2) -> Trace:
    return generate_trace(
        WildTraceSpec(num_slots=num_slots, num_devices=num_devices), seed=0
    )


# -- schema ---------------------------------------------------------------------


def test_trace_shape_accessors():
    trace = _small_trace(8, 3)
    assert trace.num_slots == 8
    assert trace.num_devices == 3
    assert trace.channel("bandwidth").per_device
    assert not trace.channel("edge_flops").per_device
    assert set(trace.names) >= {
        "bandwidth",
        "latency",
        "edge_flops",
        "arrival_rate",
        "up",
    }


def test_channel_rejects_empty_and_bad_shapes():
    with pytest.raises(TraceValidationError):
        TraceChannel("bandwidth", np.zeros((0,)))
    with pytest.raises(TraceValidationError):
        TraceChannel("bandwidth", np.zeros((2, 2, 2)))


def test_trace_rejects_mismatched_slot_axes():
    with pytest.raises(TraceValidationError):
        Trace(
            channels=(
                TraceChannel("bandwidth", np.ones((4, 2))),
                TraceChannel("arrival_rate", np.ones((5, 2))),
            )
        )


def test_trace_rejects_mismatched_device_counts():
    with pytest.raises(TraceValidationError):
        Trace(
            channels=(
                TraceChannel("bandwidth", np.ones((4, 2))),
                TraceChannel("arrival_rate", np.ones((4, 3))),
            )
        )


def test_trace_rejects_duplicate_channels():
    with pytest.raises(TraceValidationError):
        Trace(
            channels=(
                TraceChannel("bandwidth", np.ones((4, 2))),
                TraceChannel("bandwidth", np.ones((4, 2))),
            )
        )


def test_nan_allowed_only_where_down():
    up = np.ones((3, 2))
    up[1, 0] = 0.0
    bandwidth = np.full((3, 2), 1e6)
    bandwidth[1, 0] = np.nan
    # NaN exactly where down: fine.
    Trace(
        channels=(
            TraceChannel("bandwidth", bandwidth),
            TraceChannel("up", up),
        )
    )
    # NaN on an up device: rejected.
    bad = bandwidth.copy()
    bad[2, 1] = np.nan
    with pytest.raises(TraceValidationError):
        Trace(
            channels=(
                TraceChannel("bandwidth", bad),
                TraceChannel("up", up),
            )
        )


def test_up_channel_must_be_binary():
    with pytest.raises(TraceValidationError):
        Trace(channels=(TraceChannel("up", np.full((3, 2), 0.5)),))


def test_bandwidth_must_be_positive_where_up():
    with pytest.raises(TraceValidationError):
        Trace(channels=(TraceChannel("bandwidth", np.zeros((3, 2))),))


def test_up_at_and_window():
    trace = _small_trace(10, 2)
    mask = trace.up_at(0)
    assert mask.shape == (2,) and mask.dtype == bool
    sub = trace.window(2, 7)
    assert sub.num_slots == 5
    assert sub.num_devices == 2
    np.testing.assert_array_equal(
        sub.channel("edge_flops").values,
        trace.channel("edge_flops").values[2:7],
    )
    with pytest.raises(ValueError):
        trace.window(5, 3)


def test_describe_reports_nan_fraction():
    trace = generate_trace(
        WildTraceSpec(num_slots=200, num_devices=3, churn_down=0.1), seed=1
    )
    stats = trace.describe()
    assert stats["bandwidth"]["nan_fraction"] > 0
    assert stats["up"]["nan_fraction"] == 0.0
    assert stats["bandwidth"]["min"] > 0


# -- serialization --------------------------------------------------------------


@pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
def test_round_trip(tmp_path, suffix):
    trace = generate_trace(
        WildTraceSpec(num_slots=30, num_devices=3, churn_down=0.1), seed=5
    )
    assert np.isnan(trace.channel("bandwidth").values).any(), (
        "fixture should exercise NaN churn masking"
    )
    path = save_trace(trace, tmp_path / f"trace{suffix}")
    back = load_trace(path)
    assert traces_equal(trace, back)
    assert dict(back.meta)["seed"] == 5


def test_cross_format_round_trip(tmp_path):
    trace = _small_trace(12, 2)
    via_jsonl = load_jsonl(save_jsonl(trace, tmp_path / "t.jsonl"))
    via_npz = load_npz(save_npz(via_jsonl, tmp_path / "t.npz"))
    assert traces_equal(trace, via_npz)


def test_jsonl_is_standards_compliant_json(tmp_path):
    import json

    trace = generate_trace(
        WildTraceSpec(num_slots=50, num_devices=2, churn_down=0.2), seed=2
    )
    path = save_jsonl(trace, tmp_path / "t.jsonl")
    for line in path.read_text().splitlines():
        json.loads(line)  # would fail on bare NaN tokens
    assert "NaN" not in path.read_text()


def test_load_rejects_foreign_files(tmp_path):
    bad = tmp_path / "t.jsonl"
    bad.write_text('{"format": "something-else"}\n')
    with pytest.raises(TraceValidationError):
        load_jsonl(bad)
    with pytest.raises(ValueError):
        load_trace(tmp_path / "t.csv")


def test_version_mismatch_rejected(tmp_path):
    import json

    trace = _small_trace()
    path = save_jsonl(trace, tmp_path / "t.jsonl")
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["version"] = 99
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(TraceValidationError):
        load_jsonl(path)


def test_traces_equal_is_nan_aware_and_strict():
    trace = generate_trace(
        WildTraceSpec(num_slots=20, num_devices=2, churn_down=0.2), seed=3
    )
    assert traces_equal(trace, trace)
    other = generate_trace(
        WildTraceSpec(num_slots=20, num_devices=2, churn_down=0.2), seed=4
    )
    assert not traces_equal(trace, other)


# -- generators -----------------------------------------------------------------


def test_generate_trace_is_deterministic():
    spec = WildTraceSpec(num_slots=40, num_devices=3)
    assert traces_equal(generate_trace(spec, seed=9), generate_trace(spec, seed=9))
    assert not traces_equal(
        generate_trace(spec, seed=9), generate_trace(spec, seed=10)
    )


def test_channel_streams_are_independent():
    """Disabling churn must not perturb the other channels' draws (the
    split-stream discipline)."""
    base = WildTraceSpec(num_slots=60, num_devices=2, churn_down=0.3)
    calm = WildTraceSpec(num_slots=60, num_devices=2, churn_down=0.0)
    with_churn = generate_trace(base, seed=6)
    without = generate_trace(calm, seed=6)
    # Where the churny trace has a live sample, it matches the calm one.
    chan = with_churn.channel("arrival_rate").values
    ref = without.channel("arrival_rate").values
    live = ~np.isnan(chan)
    np.testing.assert_array_equal(chan[live], ref[live])
    assert not np.isnan(ref).any()


def test_diurnal_series_shape_and_positivity():
    rng = np.random.default_rng(0)
    series = diurnal_series(10.0, 50, 25, 0.5, 0.1, rng, num_series=3)
    assert series.shape == (50, 3)
    assert (series > 0).all()
    with pytest.raises(ValueError):
        diurnal_series(-1.0, 50, 25, 0.5, 0.1, rng)


def test_gilbert_elliott_only_degrades():
    rng = np.random.default_rng(1)
    base = np.full((200, 4), 8e5)
    out = gilbert_elliott_bandwidth(base, 0.2, 0.3, 0.25, rng)
    assert out.shape == base.shape
    assert (out <= base).all()
    assert (out < base).any(), "bad states should occur at these rates"
    untouched = gilbert_elliott_bandwidth(base, 0.0, 0.3, 0.25, rng)
    np.testing.assert_array_equal(untouched, base)


def test_flash_crowd_boosts_whole_fleet():
    rng = np.random.default_rng(2)
    rates = flash_crowd_rates(0.5, 400, 3, 5.0, 4.0, 10, rng)
    assert set(np.unique(rates)) <= {0.5, 2.0}
    boosted_slots = (rates == 2.0).all(axis=1)
    plain_slots = (rates == 0.5).all(axis=1)
    assert (boosted_slots | plain_slots).all(), "bursts are fleet-wide"
    assert boosted_slots.any()


def test_poisson_churn_starts_up_and_recovers():
    rng = np.random.default_rng(3)
    up = poisson_churn(500, 4, 0.05, 0.5, rng)
    assert set(np.unique(up)) <= {0.0, 1.0}
    assert (up == 0.0).any()
    # With recovery probability 0.5, devices come back.
    downs = np.flatnonzero(up[:, 0] == 0.0)
    if downs.size:
        assert up[downs[0] :, 0].max() == 1.0


def test_spec_validation():
    with pytest.raises(ValueError):
        WildTraceSpec(num_slots=0)
    with pytest.raises(ValueError):
        WildTraceSpec(diurnal_amplitude=1.5)
    with pytest.raises(ValueError):
        WildTraceSpec(ge_p_bad=1.5)
    with pytest.raises(ValueError):
        WildTraceSpec(ge_bad_factor=0.0)
    with pytest.raises(ValueError):
        WildTraceSpec(min_bandwidth=5.0, max_bandwidth=1.0)

"""Shared conformance suite for every registered offloading policy.

The policy registry (:mod:`repro.policies.registry`) is the tournament's
roster; these tests are the entry bar.  Every registered name — the
paper's DPP/Balance controllers, the naive baselines, the resilient
wrapper, and the learned/probabilistic zoo — must:

* build into an instance of the runtime-checkable
  :class:`~repro.core.offloading.OffloadingPolicy` protocol,
* decide deterministically under a fixed seed (fresh instances, same
  world → identical trajectories; exploration RNGs derive from the
  build seed, never from global state),
* agree between the scalar and vectorized fluid slot paths (the RNG
  call sequence is shared, so any gap is policy-side state leakage),
* emit finite in-range ratios when the fleet sees no demand at all —
  the empty-fleet/NaN-leakage guard.
"""

from __future__ import annotations

import math

import pytest

from repro.core.offloading import LyapunovState, OffloadingPolicy
from repro.policies import build_policy, policy_names, policy_spec
from repro.sim.arrivals import PoissonArrivals
from repro.sim.simulator import SlotSimulator

from .helpers import random_fleet

ALL_POLICIES = policy_names()
NUM_SLOTS = 10
V = 50.0


def _simulate(name: str, seed: int, vectorized: bool = False):
    system = random_fleet(seed + 5, 4)
    policy = build_policy(name, v=V, seed=seed)
    sim = SlotSimulator(
        system=system,
        arrivals=[PoissonArrivals(0.6)] * system.num_devices,
        seed=seed,
        vectorized=vectorized,
    )
    return sim.run(policy, NUM_SLOTS)


def test_registry_is_populated() -> None:
    """The acceptance floor: at least the paper pair, the baselines,
    and the three learned entrants."""
    assert len(ALL_POLICIES) >= 5
    for required in (
        "leime",
        "balance",
        "device-only",
        "edge-only",
        "probabilistic",
        "bandit",
        "tabular-q",
    ):
        assert required in ALL_POLICIES
        assert policy_spec(required).description


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_builds_a_protocol_instance(name: str) -> None:
    policy = build_policy(name, v=V, seed=0)
    assert isinstance(policy, OffloadingPolicy)


@pytest.mark.parametrize("name", ALL_POLICIES)
@pytest.mark.parametrize("seed", range(2))
def test_deterministic_under_fixed_seed(name: str, seed: int) -> None:
    """Fresh instances on the same seeded world replay byte-identical
    per-slot decisions — the property every tournament cell leans on."""
    a = _simulate(name, seed)
    b = _simulate(name, seed)
    for ra, rb in zip(a.records, b.records):
        assert ra.ratios == rb.ratios
        assert ra.queue_local == rb.queue_local
        assert ra.queue_edge == rb.queue_edge


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_scalar_and_vectorized_slot_paths_agree(name: str) -> None:
    """The vectorized fluid engine consumes the same RNG sequence, so
    every policy must produce the same decisions on both paths."""
    scalar = _simulate(name, seed=1, vectorized=False)
    fast = _simulate(name, seed=1, vectorized=True)
    for ra, rb in zip(scalar.records, fast.records):
        assert ra.ratios == pytest.approx(rb.ratios)
        assert ra.queue_local == pytest.approx(rb.queue_local)
        assert ra.queue_edge == pytest.approx(rb.queue_edge)


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_no_nan_on_idle_fleet(name: str) -> None:
    """Zero demand for the whole horizon must yield finite, in-range
    ratios every slot — no NaN leakage from rate estimators, bandit
    tables, or Q-updates dividing by observed volume."""
    system = random_fleet(11, 3)
    policy = build_policy(name, v=V, seed=3)
    state = LyapunovState.zeros(system.num_devices)
    arrivals = [0.0] * system.num_devices
    for _ in range(NUM_SLOTS):
        ratios = policy.decide(system, state, arrivals)
        assert len(ratios) == system.num_devices
        for x in ratios:
            assert math.isfinite(x)
            assert 0.0 <= x <= 1.0

"""Property-based tests of the resilience layer's invariants.

For any seeded fault plan and recovery budget:

* generated plans are well-formed (0/1 masks, slowdowns ≥ 1);
* the fluid overlay never drives a queue negative and never *improves*
  a device's conditions;
* the event simulator's accounting identity holds exactly —
  ``generated = completed + dropped + in-flight`` — and no task ever
  exceeds its retry budget;
* fault handling consumes no randomness: the same seed replays to the
  identical task history.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.offloading import DriftPlusPenaltyPolicy, FixedRatioPolicy
from repro.resilience import (
    FaultPlanSpec,
    FaultyEnvironment,
    RecoveryPolicy,
    ResilientPolicy,
    generate_fault_plan,
)
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator

from tests.helpers import random_fleet


@settings(max_examples=25, deadline=None)
@given(
    num_slots=st.integers(min_value=1, max_value=120),
    num_devices=st.integers(min_value=1, max_value=6),
    drop=st.floats(min_value=0.0, max_value=0.5),
    crash_rate=st.floats(min_value=0.0, max_value=10.0),
    slowdown=st.floats(min_value=1.0, max_value=16.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_generated_plans_are_well_formed(
    num_slots, num_devices, drop, crash_rate, slowdown, seed
):
    spec = FaultPlanSpec(
        num_slots=num_slots,
        num_devices=num_devices,
        drop_prob=drop,
        crash_rate=crash_rate,
        straggler_slowdown=slowdown,
    )
    plan = generate_fault_plan(spec, seed=seed)
    for mask in (plan.uplink_drop, plan.uplink_corrupt):
        assert mask.shape == (num_slots, num_devices)
        assert set(np.unique(mask)) <= {0, 1}
    assert set(np.unique(plan.edge_down)) <= {0, 1}
    assert set(np.unique(plan.telemetry_stale)) <= {0, 1}
    assert np.all(plan.straggler >= 1.0)
    # Outage windows tile the edge_down mask exactly.
    covered = np.zeros(num_slots, dtype=bool)
    for start, stop in plan.outage_windows():
        assert 0 <= start < stop <= num_slots
        covered[start:stop] = True
    assert np.array_equal(covered, plan.edge_down.astype(bool))


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    fleet_seed=st.integers(min_value=0, max_value=20),
    plan_seed=st.integers(min_value=0, max_value=100),
    sim_seed=st.integers(min_value=0, max_value=100),
    num_devices=st.integers(min_value=1, max_value=4),
    drop=st.floats(min_value=0.0, max_value=0.3),
    crash_rate=st.floats(min_value=0.0, max_value=5.0),
    vectorized=st.booleans(),
)
def test_fluid_overlay_keeps_queues_non_negative(
    fleet_seed, plan_seed, sim_seed, num_devices, drop, crash_rate, vectorized
):
    system = random_fleet(fleet_seed, num_devices)
    plan = generate_fault_plan(
        FaultPlanSpec(
            num_slots=30,
            num_devices=num_devices,
            drop_prob=drop,
            crash_rate=crash_rate,
        ),
        seed=plan_seed,
    )
    result = SlotSimulator(
        system=system,
        arrivals=[PoissonArrivals(0.4)] * num_devices,
        environment=FaultyEnvironment(plan),
        seed=sim_seed,
        vectorized=vectorized,
    ).run(ResilientPolicy(DriftPlusPenaltyPolicy(v=50.0), plan), 30)
    for record in result.records:
        assert all(q >= 0.0 for q in record.queue_local)
        assert all(q >= 0.0 for q in record.queue_edge)
        assert all(0.0 <= x <= 1.0 for x in record.ratios)
        assert record.total_time >= 0.0


@settings(max_examples=20, deadline=None)
@given(
    fleet_seed=st.integers(min_value=0, max_value=20),
    plan_seed=st.integers(min_value=0, max_value=100),
    slot=st.integers(min_value=0, max_value=29),
    num_devices=st.integers(min_value=1, max_value=4),
)
def test_fluid_overlay_never_improves_conditions(
    fleet_seed, plan_seed, slot, num_devices
):
    system = random_fleet(fleet_seed, num_devices)
    plan = generate_fault_plan(
        FaultPlanSpec(
            num_slots=30, num_devices=num_devices, drop_prob=0.3, corrupt_prob=0.2,
            straggler_prob=0.3,
        ),
        seed=plan_seed,
    )
    env = FaultyEnvironment(plan)
    devices = env.devices_at(slot, system.devices, np.random.default_rng(0))
    for faulty, healthy in zip(devices, system.devices):
        assert faulty.link.bandwidth <= healthy.link.bandwidth
        assert faulty.flops <= healthy.flops
        assert faulty.link.latency == healthy.link.latency
    assert env.system_at(slot, system).edge_flops <= system.edge_flops


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    plan_seed=st.integers(min_value=0, max_value=100),
    sim_seed=st.integers(min_value=0, max_value=100),
    num_devices=st.integers(min_value=1, max_value=3),
    drop=st.floats(min_value=0.0, max_value=0.3),
    crash_rate=st.floats(min_value=0.0, max_value=5.0),
    max_retries=st.integers(min_value=0, max_value=4),
    ratio=st.floats(min_value=0.0, max_value=1.0),
)
def test_event_sim_accounting_and_retry_budget(
    plan_seed, sim_seed, num_devices, drop, crash_rate, max_retries, ratio
):
    """The accounting identity and the retry budget hold for any plan,
    budget, and policy — including budget-zero and crash-heavy corners."""
    system = random_fleet(7, num_devices)
    plan = generate_fault_plan(
        FaultPlanSpec(
            num_slots=25,
            num_devices=num_devices,
            drop_prob=drop,
            corrupt_prob=drop / 2,
            crash_rate=crash_rate,
        ),
        seed=plan_seed,
    )
    recovery = RecoveryPolicy(max_retries=max_retries, backoff_base=0.25)
    result = EventSimulator(
        system=system,
        arrivals=[PoissonArrivals(0.4)] * num_devices,
        seed=sim_seed,
        faults=plan,
        recovery=recovery,
    ).run(FixedRatioPolicy(ratio, respect_constraint=False), 25,
          drain_limit_factor=100.0)
    assert len(result.tasks) == (
        len(result.completed) + result.dropped_count + result.in_flight_count
    )
    for task in result.tasks:
        assert 0 <= task.retries <= max_retries
        assert not (task.dropped and task.done)
    if max_retries == 0:
        assert result.total_retries == 0


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    plan_seed=st.integers(min_value=0, max_value=50),
    sim_seed=st.integers(min_value=0, max_value=50),
    drop=st.floats(min_value=0.0, max_value=0.3),
)
def test_event_sim_fault_replay_is_deterministic(plan_seed, sim_seed, drop):
    """Fault handling draws no randomness: the same seed pair replays to
    the byte-identical task history."""
    system = random_fleet(9, 2)
    plan = generate_fault_plan(
        FaultPlanSpec(num_slots=20, num_devices=2, drop_prob=drop),
        seed=plan_seed,
    )

    def run():
        return EventSimulator(
            system=system,
            arrivals=[PoissonArrivals(0.4)] * 2,
            seed=sim_seed,
            faults=plan,
            recovery=RecoveryPolicy.default(),
        ).run(DriftPlusPenaltyPolicy(v=50.0), 20, drain_limit_factor=100.0)

    assert run().tasks == run().tasks

"""Property-based tests of the overload layer's invariants.

For any seeded overload fleet and control configuration:

* the admission gate never admits more than was demanded (or less than
  zero), and :data:`~repro.resilience.overload.MODE_SHED` admits
  nothing;
* the degradation ladder is monotone under pressure — it never steps
  back while the fleet-mean backlog sits above the high watermark — and
  never leaves ``[MODE_FULL, max_mode]``;
* the extended SLO identity ``generated = completed + dropped + shed +
  in-flight`` holds exactly on every execution path, and the governed
  run generates exactly as many tasks as its ungoverned twin (shedding
  consumes the same RNG draws, so common-randomness comparisons stay
  honest);
* the scalar and fast event engines replay a governed run per-task
  identically, and the scalar and vectorized fluid paths byte-identically;
* bounded fluid queues never exceed their capacity, and whatever the
  clamp removed is accounted as shed, never silently lost.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.offloading import DriftPlusPenaltyPolicy, FixedRatioPolicy
from repro.resilience.overload import (
    MODE_FIRST_EXIT,
    MODE_FULL,
    MODE_SECOND_EXIT,
    MODE_SHED,
    AdmissionGate,
    OverloadControl,
    OverloadGovernor,
    apply_backpressure,
    clamp_queues,
    degrade_partition,
    degraded_exit_params,
    drain_stranded_edge,
)
from repro.sim.arrivals import TraceArrivals
from repro.sim.events import EventSimulator
from repro.sim.fast_events import run_fast
from repro.sim.simulator import SlotSimulator
from repro.traces.generators import canonical_flash_crowd

from tests.helpers import inception_partition, random_fleet


def _crowd_arrivals(n: int, slots: int, magnitude: float) -> list[TraceArrivals]:
    rates = canonical_flash_crowd(
        num_slots=slots,
        num_devices=n,
        base_rate=0.5,
        magnitude=magnitude,
        crowd_start=slots // 4,
        crowd_stop=max(slots // 2, slots // 4 + 1),
    )
    return [TraceArrivals.from_series(rates[:, i]) for i in range(n)]


# -- admission gate ------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    demand=st.floats(min_value=0.0, max_value=50.0),
    backlog=st.floats(min_value=0.0, max_value=100.0),
    mode=st.integers(min_value=MODE_FULL, max_value=MODE_SHED),
    steps=st.integers(min_value=1, max_value=20),
)
def test_admission_gate_bounds(demand, backlog, mode, steps):
    gate = AdmissionGate(OverloadControl(), 1)
    for _ in range(steps):
        admitted = gate.admit(0, demand, backlog, mode)
        assert 0.0 <= admitted <= demand
        if mode >= MODE_SHED:
            assert admitted == 0.0


@settings(max_examples=50, deadline=None)
@given(
    count=st.integers(min_value=0, max_value=40),
    backlog=st.floats(min_value=0.0, max_value=100.0),
    mode=st.integers(min_value=MODE_FULL, max_value=MODE_SHED),
)
def test_admit_count_bounds(count, backlog, mode):
    gate = AdmissionGate(OverloadControl(), 2)
    admitted = gate.admit_count(1, count, backlog, mode)
    assert isinstance(admitted, int)
    assert 0 <= admitted <= count
    if mode >= MODE_SHED:
        assert admitted == 0


def test_gate_admits_everything_below_low_watermark():
    control = OverloadControl()
    gate = AdmissionGate(control, 1)
    for _ in range(10):
        assert gate.admit(0, 7.0, control.queue_low / 2.0, MODE_FULL) == 7.0


# -- degradation ladder --------------------------------------------------------


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    backlogs=st.lists(
        st.floats(min_value=0.0, max_value=60.0), min_size=1, max_size=120
    ),
    num_devices=st.integers(min_value=1, max_value=6),
)
def test_ladder_monotone_under_pressure(backlogs, num_devices):
    """While the mean backlog is above the high watermark, the ladder
    never steps back; the rung always stays within [MODE_FULL, max_mode]."""
    control = OverloadControl()
    governor = OverloadGovernor(control, num_devices)
    previous = governor.mode
    for slot, level in enumerate(backlogs):
        per_device = [level] * num_devices
        mode = governor.observe(slot, per_device)
        assert MODE_FULL <= mode <= control.max_mode
        if level > control.queue_high:
            assert mode >= previous
        previous = mode


def test_ladder_hysteresis_steps():
    """patience hot slots step one rung deeper; cooldown calm slots step
    one rung back — and a single calm slot resets the hot streak."""
    control = OverloadControl(patience=3, cooldown=4)
    governor = OverloadGovernor(control, 1)
    hot = [control.queue_high + 1.0]
    calm = [control.queue_low / 2.0]
    slot = 0
    for _ in range(2):
        governor.observe(slot, hot)
        slot += 1
    assert governor.mode == MODE_FULL  # patience not yet reached
    governor.observe(slot, calm)  # resets the hot streak
    slot += 1
    for _ in range(2):
        governor.observe(slot, hot)
        slot += 1
    assert governor.mode == MODE_FULL
    governor.observe(slot, hot)
    slot += 1
    assert governor.mode == MODE_SECOND_EXIT
    for _ in range(control.cooldown - 1):
        governor.observe(slot, calm)
        slot += 1
    assert governor.mode == MODE_SECOND_EXIT
    governor.observe(slot, calm)
    assert governor.mode == MODE_FULL
    assert governor.transitions == [(5, MODE_SECOND_EXIT), (9, MODE_FULL)]


def test_degraded_exit_params_are_exact():
    """Degraded sigmas are exactly what the fast engine's array writes
    produce — the engines' byte-identity depends on it."""
    partition = inception_partition()
    s1, e2 = degraded_exit_params(partition, MODE_FULL)
    assert s1 == partition.sigma1
    s1, e2 = degraded_exit_params(partition, MODE_SECOND_EXIT)
    assert s1 == partition.sigma1 and e2 == 1.0
    for mode in (MODE_FIRST_EXIT, MODE_SHED):
        assert degraded_exit_params(partition, mode) == (1.0, 1.0)


def test_degrade_partition_modes():
    partition = inception_partition()
    assert degrade_partition(partition, MODE_FULL) is partition
    second = degrade_partition(partition, MODE_SECOND_EXIT)
    assert second.sigma1 == partition.sigma1
    assert second.sigma2 == 1.0
    first = degrade_partition(partition, MODE_FIRST_EXIT)
    assert first.sigma1 == 1.0 and first.sigma2 == 1.0


# -- backpressure and fluid helpers --------------------------------------------


def test_apply_backpressure_modes():
    control = OverloadControl()
    ratios = [0.4, 0.9, 0.1]
    edge = [0.0, control.queue_high + 5.0, 1.0]
    clamped = apply_backpressure(ratios, edge, control, MODE_FULL)
    assert clamped == [0.4, 0.0, 0.1]
    for mode in (MODE_FIRST_EXIT, MODE_SHED):
        assert apply_backpressure(ratios, edge, control, mode) == [0.0] * 3


def test_drain_stranded_edge_only_stranded_devices():
    control = OverloadControl()
    # Device 0: clamped (above high watermark) — drains.  Device 1: below
    # the watermark with x = 0 — untouched (the paper's own recursion
    # applies).  Device 2: offloading — untouched.
    edge = [control.queue_high + 3.0, 2.0, 8.0]
    drain_stranded_edge(
        edge, [0.0, 0.0, 0.5], [4.0, 4.0, 4.0], control.queue_high, MODE_FULL
    )
    assert edge == [control.queue_high - 1.0, 2.0, 8.0]
    # Deep rungs drain every zero-ratio device, and never below zero.
    edge = [1.5, 2.0, 8.0]
    drain_stranded_edge(
        edge, [0.0, 0.0, 0.5], [4.0, 4.0, 4.0], control.queue_high, MODE_FIRST_EXIT
    )
    assert edge == [0.0, 0.0, 8.0]


@settings(max_examples=50, deadline=None)
@given(
    local=st.lists(
        st.floats(min_value=0.0, max_value=200.0), min_size=1, max_size=8
    ),
    capacity=st.floats(min_value=1.0, max_value=100.0),
    data=st.data(),
)
def test_clamp_queues_bounds_and_accounts(local, capacity, data):
    edge = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=200.0),
            min_size=len(local),
            max_size=len(local),
        )
    )
    before = sum(local) + sum(edge)
    shed = clamp_queues(local, edge, capacity)
    assert shed >= 0.0
    assert all(q <= capacity for q in local + edge)
    assert sum(local) + sum(edge) + shed == pytest.approx(before)


# -- cross-path identities -----------------------------------------------------


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    num_devices=st.integers(min_value=1, max_value=4),
    num_slots=st.integers(min_value=4, max_value=24),
    magnitude=st.floats(min_value=1.0, max_value=20.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_event_engines_identity_under_overload(
    num_devices, num_slots, magnitude, seed
):
    """Scalar and fast event engines replay a governed crowd per-task
    identically; the extended SLO identity holds exactly; and the
    governed run generates as many tasks as its ungoverned twin."""
    system = random_fleet(seed + 7, num_devices)
    control = OverloadControl()

    def sim(overload):
        return EventSimulator(
            system=system,
            arrivals=_crowd_arrivals(num_devices, num_slots, magnitude),
            seed=seed,
            overload=overload,
        )

    # The drain bound scales with the horizon, so floor it: at the
    # 4-slot end of the strategy a governed-but-slow-link fleet can
    # need >200s of simulated drain while being perfectly stable
    # (finite work, it just trickles through a ~1 Mbps uplink).
    drain_factor = 100.0 * max(1.0, 24.0 / num_slots)
    scalar = sim(control).run(
        FixedRatioPolicy(0.5), num_slots, drain_limit_factor=drain_factor
    )
    fast = run_fast(
        sim(control),
        FixedRatioPolicy(0.5),
        num_slots,
        drain_limit_factor=drain_factor,
    )
    # drain=False: a heavy ungoverned crowd is *supposed* to be unable to
    # drain — all we need from the twin is its generated-task count.
    twin = sim(None).run(FixedRatioPolicy(0.5), num_slots, drain=False)

    assert len(scalar.tasks) == len(fast.tasks) == len(twin.tasks)
    assert scalar.modes == fast.modes
    for a, b in zip(scalar.tasks, fast.tasks):
        assert a.shed == b.shed
        assert a.dropped == b.dropped
        assert a.exit_tier == b.exit_tier
        assert (a.completed is None) == (b.completed is None)
        if a.completed is not None:
            assert a.completed == pytest.approx(b.completed, abs=1e-9)
    for result in (scalar, fast):
        assert len(result.tasks) == (
            len(result.completed)
            + result.dropped_count
            + result.shed_count
            + result.in_flight_count
        )
    assert twin.shed_count == 0


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    num_devices=st.integers(min_value=1, max_value=6),
    num_slots=st.integers(min_value=4, max_value=40),
    magnitude=st.floats(min_value=1.0, max_value=30.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_fluid_paths_identity_and_conservation(
    num_devices, num_slots, magnitude, seed
):
    """Governed scalar and vectorized fluid paths stay byte-identical;
    bounded queues respect their capacity; and generated = admitted
    arrivals + shed on every record."""
    system = random_fleet(seed + 7, num_devices)
    control = OverloadControl()

    def run(vectorized):
        return SlotSimulator(
            system=system,
            arrivals=_crowd_arrivals(num_devices, num_slots, magnitude),
            seed=seed,
            vectorized=vectorized,
            overload=control,
        ).run(FixedRatioPolicy(0.5), num_slots)

    scalar, vectorized = run(False), run(True)
    for a, b in zip(scalar.records, vectorized.records):
        assert a.queue_local == b.queue_local
        assert a.queue_edge == b.queue_edge
        assert a.total_time == b.total_time
        assert a.ratios == b.ratios
        assert a.shed == b.shed
        assert a.mode == b.mode
    for record in scalar.records:
        assert all(
            q <= control.queue_capacity + 1e-9
            for q in record.queue_local + record.queue_edge
        )
        assert record.shed >= 0.0
    assert scalar.total_generated == pytest.approx(
        scalar.total_arrivals + scalar.total_shed
    )


def test_runtime_governed_identity_and_clean_shutdown(small_system):
    """The live threaded runtime under a governed crowd: the extended
    SLO identity holds over real threads and bounded queues, demand is
    actually shed, and every worker (including propagation timers)
    stops cleanly."""
    from repro.runtime import LeimeRuntime

    control = OverloadControl(
        queue_high=1.0,
        queue_low=0.5,
        token_rate=0.5,
        bucket_depth=1.0,
        queue_capacity=8.0,
        patience=1,
        cooldown=2,
    )
    runtime = LeimeRuntime(
        small_system, FixedRatioPolicy(0.5), speedup=500.0, seed=0
    )
    try:
        report = runtime.run(
            _crowd_arrivals(2, 12, 10.0),
            num_slots=12,
            drain_timeout=30.0,
            overload=control,
        )
    finally:
        clean = runtime.shutdown()
    assert clean
    assert len(report.tasks) == (
        len(report.completed)
        + report.dropped_count
        + report.shed_count
        + report.in_flight_count
    )
    assert report.shed_count > 0
    assert len(report.completed) > 0


def test_governed_fluid_survives_crowd_ungoverned_diverges():
    """The headline stability claim at property scale: under the pinned
    flash crowd the ungoverned backlog grows monotonically through the
    crowd window while the governed run stays bounded and its ladder
    recovers to MODE_FULL."""
    from repro.experiments.fig_overload import run_fig_overload

    result = run_fig_overload()
    governed = result.fluid_by_scheme("LEIME + governor")
    ungoverned = result.fluid_by_scheme("LEIME (ungoverned)")
    assert ungoverned.crowd_monotone
    assert ungoverned.max_backlog > 10.0 * governed.max_backlog
    assert math.isinf(ungoverned.recovery_slots)
    assert governed.max_mode > MODE_FULL
    assert not math.isinf(governed.mode_recovery_slots)
    assert result.fluid_paths_identical
    assert result.event_engines_identical
    assert result.fluid_conservation
    for row in result.rows:
        assert row.identity_holds
    assert result.by_scheme("LEIME + governor").p99_tct < (
        result.by_scheme("LEIME (ungoverned)").p99_tct
    )

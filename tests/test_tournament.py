"""Tournament harness contracts: determinism, resume, and the headline.

The league is only evidence if re-running it is free of noise: the same
spec must serialise byte-identically twice, a resumed run must reuse
finished cells verbatim, and the canonical stationary scenario must
reproduce the paper-side headline — LEIME (drift-plus-penalty) strictly
ahead of the naive single-destination baselines on both event engines.
"""

from __future__ import annotations

import json

import pytest

from repro.tournament import (
    TournamentSpec,
    cell_key,
    league_markdown,
    load_artifact,
    run_tournament,
    save_artifact,
)
from repro.tournament.runner import _serialise

MINI = TournamentSpec(
    policies=("leime", "device-only", "edge-only"),
    scenarios=("stationary", "flash-crowd"),
    num_slots=30,
    num_devices=3,
    seed=7,
)


def test_spec_validates_names() -> None:
    with pytest.raises(ValueError):
        TournamentSpec(policies=("no-such-policy",))
    with pytest.raises(ValueError):
        TournamentSpec(scenarios=("no-such-scenario",))
    with pytest.raises(ValueError):
        TournamentSpec(engines=("gpu",))


def test_fingerprint_tracks_the_spec() -> None:
    assert MINI.fingerprint() == MINI.fingerprint()
    assert MINI.fingerprint() != TournamentSpec(
        policies=MINI.policies,
        scenarios=MINI.scenarios,
        num_slots=MINI.num_slots,
        num_devices=MINI.num_devices,
        seed=MINI.seed + 1,
    ).fingerprint()


def test_two_runs_serialise_byte_identically() -> None:
    a = run_tournament(MINI)
    b = run_tournament(MINI)
    assert _serialise(a) == _serialise(b)
    assert league_markdown(a) == league_markdown(b)


def test_every_cell_agrees_across_engines() -> None:
    """A scalar/fast metric gap inside one (scenario, policy) pair is a
    conformance bug; the league must never rank engine noise."""
    artifact = run_tournament(MINI)
    for scenario in MINI.scenarios:
        for policy in MINI.policies:
            scalar = artifact["cells"][cell_key(scenario, policy, "scalar")]
            fast = artifact["cells"][cell_key(scenario, policy, "fast")]
            assert scalar["metrics"] == fast["metrics"], (scenario, policy)


def test_leime_beats_naive_baselines_on_stationary() -> None:
    """The acceptance headline on the congested stationary scenario."""
    spec = TournamentSpec(
        policies=("leime", "device-only", "edge-only"),
        scenarios=("stationary",),
        num_slots=80,
        num_devices=4,
        seed=0,
    )
    artifact = run_tournament(spec)
    league = {row["policy"]: row["rank"] for row in artifact["league"]}
    assert league["leime"] == 1
    assert league["leime"] < league["device-only"]
    assert league["leime"] < league["edge-only"]
    # Strict wins, not tie-break luck: compare the p99 column per engine.
    for engine in spec.engines:
        p99 = {
            policy: artifact["cells"][cell_key("stationary", policy, engine)][
                "metrics"
            ]["p99_tct"]
            for policy in spec.policies
        }
        assert p99["leime"] < p99["device-only"]
        assert p99["leime"] < p99["edge-only"]


def test_resume_reuses_finished_cells(tmp_path, monkeypatch) -> None:
    out = tmp_path / "tournament.json"
    run_tournament(MINI, output=str(out))
    first = out.read_bytes()

    import repro.tournament.runner as runner

    def boom(*args, **kwargs):  # pragma: no cover - only on regression
        raise AssertionError("resume must not recompute finished cells")

    monkeypatch.setattr(runner, "run_cell", boom)
    artifact = run_tournament(MINI, output=str(out))
    assert out.read_bytes() == first
    assert len(artifact["cells"]) == len(MINI.policies) * len(
        MINI.scenarios
    ) * len(MINI.engines)


def test_partial_artifact_resumes_the_remainder(tmp_path) -> None:
    out = tmp_path / "tournament.json"
    full = run_tournament(MINI)
    partial = dict(full)
    keys = sorted(full["cells"])
    partial["cells"] = {k: full["cells"][k] for k in keys[: len(keys) // 2]}
    partial["league"] = []
    save_artifact(partial, str(out))
    resumed = run_tournament(MINI, output=str(out))
    assert _serialise(resumed) == _serialise(full)


def test_mismatched_fingerprint_starts_fresh(tmp_path) -> None:
    out = tmp_path / "tournament.json"
    stale = {
        "schema": "repro.tournament/v1",
        "fingerprint": "not-this-spec",
        "cells": {"bogus|cell|scalar": {"metrics": {}}},
        "league": [],
    }
    save_artifact(stale, str(out))
    artifact = run_tournament(MINI, output=str(out))
    assert "bogus|cell|scalar" not in artifact["cells"]
    assert load_artifact(str(out))["fingerprint"] == MINI.fingerprint()


def test_artifact_is_stable_json(tmp_path) -> None:
    """The committed artifact format: sorted keys, rounded floats, no
    NaN tokens (empty groups serialise as null)."""
    out = tmp_path / "tournament.json"
    run_tournament(MINI, output=str(out))
    text = out.read_text()
    assert "NaN" not in text
    parsed = json.loads(text)
    assert _serialise(parsed) == text

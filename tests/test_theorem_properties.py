"""Direct property tests of the paper's analytical claims.

These complement the search-equivalence tests: rather than comparing two
algorithms, they check the *statements* themselves on random instances —
Theorem 1's dominance inequality, the cost model's monotonicities, and the
Cauchy-Schwarz balance argument of §III-D4.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.exit_setting import AverageEnvironment, ExitCostModel
from repro.core.offloading import (
    BalanceOffloadingPolicy,
    DeviceConfig,
    EdgeSystem,
    LyapunovState,
    slot_cost,
)
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    NetworkProfile,
    RASPBERRY_PI_3B,
)
from repro.models.exit_rates import EmpiricalExitCurve, ParametricExitCurve
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import build_model
from repro.units import gflops, mbps


def _env(**overrides) -> AverageEnvironment:
    defaults = dict(
        device_flops=RASPBERRY_PI_3B.flops,
        edge_flops=EDGE_I7_3770.flops * 0.25,
        cloud_flops=CLOUD_V100.flops,
        device_edge=NetworkProfile(mbps(10), 0.02),
        edge_cloud=INTERNET_EDGE_CLOUD,
    )
    defaults.update(overrides)
    return AverageEnvironment(**defaults)


# -- Theorem 1: the dominance inequality itself --------------------------------


@settings(max_examples=100, deadline=None)
@given(
    triple=st.sets(st.integers(min_value=1, max_value=15), min_size=3, max_size=3),
    complexity=st.floats(min_value=0.05, max_value=0.95),
    device_gflops=st.floats(min_value=1.0, max_value=40.0),
)
def test_theorem1_dominance(triple, complexity, device_gflops):
    """If exit_{i1} is shallower than exit_{i2} and wins the two-exit
    relaxation, it wins every completed combination with a shared
    Second-exit j — the exact statement of Theorem 1.  (When the deeper
    exit wins the relaxation, the theorem says nothing, and the case
    passes vacuously.)"""
    i1, i2, j = sorted(triple)
    me_dnn = MultiExitDNN(
        build_model("inception-v3"),
        ParametricExitCurve.from_complexity(complexity),
    )
    model = ExitCostModel(me_dnn, _env(device_flops=gflops(device_gflops)))
    if model.two_exit_cost(i1) <= model.two_exit_cost(i2):
        assert model.cost_at(i1, j) <= model.cost_at(i2, j) + 1e-9


# -- cost-model monotonicities ---------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    e1=st.integers(min_value=1, max_value=14),
    e2=st.integers(min_value=2, max_value=15),
    scale=st.floats(min_value=1.01, max_value=10.0),
)
def test_cost_monotone_in_every_resource(e1, e2, scale):
    """Scaling ANY single resource up can never increase T(E)."""
    assume(e1 < e2)
    me_dnn = MultiExitDNN(build_model("inception-v3"))
    base_env = _env()
    base = ExitCostModel(me_dnn, base_env).cost_at(e1, e2)
    variants = [
        _env(device_flops=base_env.device_flops * scale),
        _env(edge_flops=base_env.edge_flops * scale),
        _env(cloud_flops=base_env.cloud_flops * scale),
        _env(
            device_edge=NetworkProfile(
                base_env.device_edge.bandwidth * scale,
                base_env.device_edge.latency,
            )
        ),
        _env(
            edge_cloud=NetworkProfile(
                base_env.edge_cloud.bandwidth * scale,
                base_env.edge_cloud.latency,
            )
        ),
    ]
    for env in variants:
        assert ExitCostModel(me_dnn, env).cost_at(e1, e2) <= base + 1e-12


@settings(max_examples=40, deadline=None)
@given(
    e1=st.integers(min_value=1, max_value=14),
    e2=st.integers(min_value=2, max_value=15),
    bump=st.floats(min_value=0.01, max_value=0.3),
)
def test_cost_monotone_in_exit_rates(e1, e2, bump):
    """Raising σ (more tasks exit earlier) can never increase T(E)."""
    assume(e1 < e2)
    profile = build_model("inception-v3")
    m = profile.num_layers
    base_rates = [0.3 + 0.6 * (i / m) for i in range(1, m + 1)]
    base_rates[-1] = 1.0
    bumped = [min(r + bump, 1.0) for r in base_rates]
    bumped[-1] = 1.0
    env = _env()
    low = ExitCostModel(
        MultiExitDNN(profile, EmpiricalExitCurve.from_measurements(base_rates)),
        env,
    ).cost_at(e1, e2)
    high = ExitCostModel(
        MultiExitDNN(profile, EmpiricalExitCurve.from_measurements(bumped)),
        env,
    ).cost_at(e1, e2)
    assert high <= low + 1e-12


# -- §III-D4: the balance point minimises T^d + T^e ------------------------------


@settings(max_examples=25, deadline=None)
@given(
    arrivals=st.floats(min_value=0.5, max_value=4.0),
    bandwidth=st.floats(min_value=4.0, max_value=50.0),
)
def test_balance_point_near_optimal_for_sum(arrivals, bandwidth):
    """The x with T^d(x) = T^e(x) approximately minimises T^d + T^e over
    the feasible interval — the Cauchy-Schwarz argument's content.  (The
    equality is exact when the product form holds; we assert near-
    optimality of the sum on the real cost model.)"""
    me_dnn = MultiExitDNN(build_model("inception-v3"))
    partition = me_dnn.partition_at(5, 14)
    device = DeviceConfig(
        name="d",
        flops=RASPBERRY_PI_3B.flops,
        link=NetworkProfile(mbps(bandwidth), 0.02),
        mean_arrivals=arrivals,
        overhead=RASPBERRY_PI_3B.per_task_overhead,
    )
    system = EdgeSystem(
        devices=(device,),
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=partition,
        shares=(1.0,),
    )
    state = LyapunovState.zeros(1)
    x_balance = BalanceOffloadingPolicy().decide(system, state, [arrivals])[0]

    def y(x: float) -> float:
        cost = slot_cost(
            device, system, x, arrivals, 0.0, 0.0, 1.0, include_tail=False
        )
        return cost.y

    from repro.core.offloading import feasible_ratio_interval

    lo, hi = feasible_ratio_interval(device, partition, 1.0, arrivals)
    grid_best = min(y(lo + (hi - lo) * i / 200) for i in range(201))
    # Boundedly suboptimal: the rule is a large-V product-form
    # approximation; at light load it can pick an interior point where a
    # corner is optimal, costing up to ~2× — but never unboundedly more.
    assert y(x_balance) <= grid_best * 3.0 + 1e-9

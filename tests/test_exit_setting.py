"""Exit setting: the T(E) cost model, brute force, and branch-and-bound."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exit_setting import (
    AverageEnvironment,
    ExitCostModel,
    branch_and_bound_exit_setting,
    brute_force_exit_setting,
)
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    JETSON_NANO,
    NetworkProfile,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models.exit_rates import EmpiricalExitCurve, ParametricExitCurve
from repro.models.multi_exit import ExitSelection, MultiExitDNN
from repro.models.profile import DNNProfile, LayerProfile
from repro.models.zoo import MODEL_BUILDERS, build_model
from repro.units import gflops, mbps, ms


def _env(**overrides) -> AverageEnvironment:
    defaults = dict(
        device_flops=RASPBERRY_PI_3B.flops,
        edge_flops=EDGE_I7_3770.flops * 0.25,
        cloud_flops=CLOUD_V100.flops,
        device_edge=WIFI_DEVICE_EDGE,
        edge_cloud=INTERNET_EDGE_CLOUD,
    )
    defaults.update(overrides)
    return AverageEnvironment(**defaults)


def test_environment_validation():
    with pytest.raises(ValueError):
        _env(device_flops=0.0)
    with pytest.raises(ValueError):
        _env(device_overhead=-1.0)


def test_environment_from_platforms_share():
    env = AverageEnvironment.from_platforms(
        RASPBERRY_PI_3B,
        EDGE_I7_3770,
        CLOUD_V100,
        WIFI_DEVICE_EDGE,
        INTERNET_EDGE_CLOUD,
        edge_share=0.5,
    )
    assert env.edge_flops == pytest.approx(EDGE_I7_3770.flops * 0.5)
    assert env.device_overhead == RASPBERRY_PI_3B.per_task_overhead
    with pytest.raises(ValueError):
        AverageEnvironment.from_platforms(
            RASPBERRY_PI_3B,
            EDGE_I7_3770,
            CLOUD_V100,
            WIFI_DEVICE_EDGE,
            INTERNET_EDGE_CLOUD,
            edge_share=0.0,
        )


def test_cost_decomposition_matches_eq4():
    """T(E) must equal t^d + (1-σ₁)t^e + (1-σ₂)t^c."""
    me_dnn = MultiExitDNN(build_model("inception-v3"))
    model = ExitCostModel(me_dnn, _env())
    e1, e2 = 5, 14
    expected = (
        model.device_time(e1)
        + (1.0 - me_dnn.exit_rate(e1)) * model.edge_time(e1, e2)
        + (1.0 - me_dnn.exit_rate(e2)) * model.cloud_time(e2)
    )
    assert model.cost_at(e1, e2) == pytest.approx(expected)


def test_cost_rejects_bad_combinations():
    me_dnn = MultiExitDNN(build_model("inception-v3"))
    model = ExitCostModel(me_dnn, _env())
    with pytest.raises(ValueError):
        model.cost(ExitSelection(1, 2, 15))
    with pytest.raises(ValueError):
        model.cost_at(14, 16)


def test_faster_device_never_increases_cost():
    me_dnn = MultiExitDNN(build_model("vgg-16"))
    slow = ExitCostModel(me_dnn, _env(device_flops=gflops(1.0)))
    fast = ExitCostModel(me_dnn, _env(device_flops=gflops(10.0)))
    for e1 in range(1, me_dnn.num_exits - 1):
        for e2 in range(e1 + 1, me_dnn.num_exits):
            assert fast.cost_at(e1, e2) <= slow.cost_at(e1, e2) + 1e-12


def test_better_bandwidth_never_increases_cost():
    me_dnn = MultiExitDNN(build_model("vgg-16"))
    slow = ExitCostModel(me_dnn, _env(device_edge=NetworkProfile(mbps(2), ms(20))))
    fast = ExitCostModel(me_dnn, _env(device_edge=NetworkProfile(mbps(50), ms(20))))
    for e1 in range(1, me_dnn.num_exits - 1):
        for e2 in range(e1 + 1, me_dnn.num_exits):
            assert fast.cost_at(e1, e2) <= slow.cost_at(e1, e2) + 1e-12


def test_brute_force_matches_manual_minimum():
    me_dnn = MultiExitDNN(build_model("squeezenet-1.0"))
    env = _env()
    model = ExitCostModel(me_dnn, env)
    manual = min(
        (model.cost_at(e1, e2), e1, e2)
        for e1 in range(1, me_dnn.num_exits - 1)
        for e2 in range(e1 + 1, me_dnn.num_exits)
    )
    result = brute_force_exit_setting(me_dnn, env)
    assert result.cost == pytest.approx(manual[0])
    assert result.selection.as_tuple() == (manual[1], manual[2], me_dnn.num_exits)


@pytest.mark.parametrize("model_name", sorted(MODEL_BUILDERS))
@pytest.mark.parametrize("complexity", [0.1, 0.5, 0.9])
def test_branch_and_bound_matches_brute_force_on_zoo(model_name, complexity):
    me_dnn = MultiExitDNN(
        build_model(model_name), ParametricExitCurve.from_complexity(complexity)
    )
    env = _env()
    brute = brute_force_exit_setting(me_dnn, env)
    fast = branch_and_bound_exit_setting(me_dnn, env)
    assert fast.cost == pytest.approx(brute.cost)
    assert fast.selection == brute.selection


def test_branch_and_bound_uses_fewer_evaluations():
    me_dnn = MultiExitDNN(build_model("inception-v3"))
    env = _env()
    brute = brute_force_exit_setting(me_dnn, env)
    fast = branch_and_bound_exit_setting(me_dnn, env)
    assert fast.evaluations < brute.evaluations


def test_device_capability_moves_first_exit_deeper():
    """Fig. 2(a): a faster device prefers a deeper First-exit."""
    me_dnn = MultiExitDNN(build_model("inception-v3"))
    slow = brute_force_exit_setting(me_dnn, _env(device_flops=RASPBERRY_PI_3B.flops))
    fast = brute_force_exit_setting(me_dnn, _env(device_flops=JETSON_NANO.flops))
    assert fast.selection.first > slow.selection.first


def test_edge_load_moves_second_exit_shallower():
    """Fig. 2(b): a loaded edge prefers a shallower Second-exit."""
    me_dnn = MultiExitDNN(build_model("inception-v3"))
    light = brute_force_exit_setting(
        me_dnn, _env(edge_flops=EDGE_I7_3770.flops * 0.8)
    )
    heavy = brute_force_exit_setting(
        me_dnn, _env(edge_flops=EDGE_I7_3770.flops * 0.05)
    )
    assert heavy.selection.second <= light.selection.second


# -- property-based: B&B equals brute force on random profiles --------------


@st.composite
def random_me_dnn(draw):
    """Random chains satisfying Theorem 1's assumptions: monotone σ and
    layer FLOPs that dominate exit-head FLOPs (see DESIGN.md)."""
    m = draw(st.integers(min_value=3, max_value=12))
    layers = []
    for i in range(m):
        flops = draw(st.floats(min_value=1e8, max_value=5e9))
        channels = draw(st.integers(min_value=4, max_value=256))
        side = draw(st.integers(min_value=1, max_value=32))
        layers.append(
            LayerProfile(name=f"l{i}", flops=flops, output_shape=(channels, side, side))
        )
    profile = DNNProfile(name="random", input_bytes=3072, layers=tuple(layers))
    raw = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=m,
                max_size=m,
            )
        )
    )
    raw[-1] = 1.0
    curve = EmpiricalExitCurve.from_measurements(raw)
    return MultiExitDNN(profile, curve)


@st.composite
def random_environment(draw):
    return AverageEnvironment(
        device_flops=draw(st.floats(min_value=gflops(0.5), max_value=gflops(50))),
        edge_flops=draw(st.floats(min_value=gflops(2), max_value=gflops(200))),
        cloud_flops=draw(st.floats(min_value=gflops(50), max_value=gflops(2000))),
        device_edge=NetworkProfile(
            draw(st.floats(min_value=mbps(1), max_value=mbps(100))),
            draw(st.floats(min_value=0.0, max_value=0.3)),
        ),
        edge_cloud=NetworkProfile(
            draw(st.floats(min_value=mbps(5), max_value=mbps(200))),
            draw(st.floats(min_value=0.0, max_value=0.3)),
        ),
        device_overhead=draw(st.floats(min_value=0.0, max_value=0.1)),
        edge_overhead=draw(st.floats(min_value=0.0, max_value=0.05)),
        cloud_overhead=draw(st.floats(min_value=0.0, max_value=0.02)),
    )


@settings(max_examples=60, deadline=None)
@given(me_dnn=random_me_dnn(), env=random_environment())
def test_branch_and_bound_optimal_on_random_instances(me_dnn, env):
    brute = brute_force_exit_setting(me_dnn, env)
    fast = branch_and_bound_exit_setting(me_dnn, env)
    assert fast.cost == pytest.approx(brute.cost, rel=1e-9)

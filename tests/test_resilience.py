"""The resilience layer: fault plans, recovery, SLO accounting.

Covers the :mod:`repro.resilience` package end to end: seeded plan
generation and serialisation, trace composition, the fluid overlay, the
control-plane wrapper, the event simulator's discrete fault handling,
the live runtime's fault path, the empty-fleet NaN convention, and the
worker-leak warning.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.offloading import (
    DriftPlusPenaltyPolicy,
    FixedRatioPolicy,
    LyapunovState,
)
from repro.resilience import (
    FaultPlan,
    FaultPlanError,
    FaultPlanSpec,
    FaultyEnvironment,
    RecoveryPolicy,
    ResilientPolicy,
    attach_faults,
    canonical_outage_plan,
    extract_faults,
    generate_fault_plan,
    load_fault_plan,
    plans_equal,
    save_fault_plan,
    slo_summary,
    time_to_recovery,
)
from repro.runtime import LeimeRuntime, RuntimeNode, VirtualClock
from repro.runtime.system import RuntimeReport
from repro.sim.arrivals import ConstantArrivals, PoissonArrivals
from repro.sim.events import EventSimResult, EventSimulator
from repro.sim.simulator import SlotSimulator
from repro.traces.generators import WildTraceSpec, generate_trace

from tests.helpers import random_fleet


# -- plan generation ------------------------------------------------------------


def test_generate_same_seed_is_identical():
    spec = FaultPlanSpec(num_slots=60, num_devices=3)
    assert plans_equal(generate_fault_plan(spec, seed=5), generate_fault_plan(spec, seed=5))


def test_generate_different_seeds_differ():
    spec = FaultPlanSpec(num_slots=120, num_devices=3, drop_prob=0.1)
    assert not plans_equal(
        generate_fault_plan(spec, seed=5), generate_fault_plan(spec, seed=6)
    )


def test_spec_validation():
    with pytest.raises(FaultPlanError):
        FaultPlanSpec(num_slots=0)
    with pytest.raises(FaultPlanError):
        FaultPlanSpec(drop_prob=1.5)
    with pytest.raises(FaultPlanError):
        FaultPlanSpec(crash_rate=-1.0)
    with pytest.raises(FaultPlanError):
        FaultPlanSpec(straggler_slowdown=0.5)


def test_canonical_outage_plan_pins_the_outage():
    plan = canonical_outage_plan(num_slots=90, num_devices=4, seed=0)
    start, stop = int(plan.meta["outage_start"]), int(plan.meta["outage_stop"])
    assert (start, stop) == (30, 41)
    assert plan.outage_windows() == [(start, stop)]
    assert all(plan.edge_down_at(t) for t in range(start, stop))
    assert not plan.edge_down_at(start - 1) and not plan.edge_down_at(stop)


def test_accessors_report_healthy_world_outside_the_plan():
    plan = canonical_outage_plan(num_slots=30, num_devices=2, seed=1)
    for slot in (-1, 30, 10_000):
        assert not plan.in_range(slot)
        assert not plan.drop_at(slot, 0)
        assert not plan.corrupt_at(slot, 1)
        assert not plan.edge_down_at(slot)
        assert not plan.stale_at(slot)
        assert plan.straggler_at(slot, 0) == 1.0


def test_window_slices_the_schedule():
    plan = generate_fault_plan(FaultPlanSpec(num_slots=50, num_devices=2), seed=2)
    window = plan.window(10, 30)
    assert window.num_slots == 20
    assert np.array_equal(window.uplink_drop, plan.uplink_drop[10:30])
    assert np.array_equal(window.edge_down, plan.edge_down[10:30])


# -- serialisation and trace composition ----------------------------------------


@pytest.mark.parametrize("suffix", [".npz", ".jsonl"])
def test_save_load_round_trip(tmp_path, suffix):
    plan = generate_fault_plan(
        FaultPlanSpec(num_slots=40, num_devices=3, drop_prob=0.1), seed=9
    )
    path = save_fault_plan(plan, tmp_path / f"plan{suffix}")
    loaded = load_fault_plan(path)
    assert plans_equal(plan, loaded)
    assert loaded.meta["seed"] == 9


def test_trace_round_trip_preserves_the_plan():
    plan = generate_fault_plan(FaultPlanSpec(num_slots=25, num_devices=2), seed=3)
    assert plans_equal(FaultPlan.from_trace(plan.to_trace()), plan)


def test_attach_and_extract_faults_compose_with_wild_traces():
    trace = generate_trace(WildTraceSpec(num_slots=30, num_devices=2), seed=0)
    plan = generate_fault_plan(FaultPlanSpec(num_slots=30, num_devices=2), seed=4)
    combined = attach_faults(trace, plan)
    # The wild channels survive and the plan round-trips out.
    for name in trace.names:
        assert name in combined.names
    recovered = extract_faults(combined)
    assert recovered is not None and plans_equal(recovered, plan)
    assert extract_faults(trace) is None


def test_attach_faults_rejects_mismatched_shapes():
    trace = generate_trace(WildTraceSpec(num_slots=30, num_devices=2), seed=0)
    plan = generate_fault_plan(FaultPlanSpec(num_slots=30, num_devices=3), seed=0)
    with pytest.raises(FaultPlanError):
        attach_faults(trace, plan)


# -- recovery policy ------------------------------------------------------------


def test_backoff_schedule_is_exponential():
    recovery = RecoveryPolicy(max_retries=3, backoff_base=0.5, backoff_factor=2.0)
    assert [recovery.backoff(k) for k in range(3)] == [0.5, 1.0, 2.0]
    assert recovery.backoff_span() == pytest.approx(3.5)


def test_default_budget_outlasts_the_canonical_outage():
    plan = canonical_outage_plan(num_slots=160, num_devices=4, seed=0)
    longest = plan.describe()["longest_outage_slots"] * plan.slot_length
    assert RecoveryPolicy.default().backoff_span() > longest


def test_recovery_validation():
    with pytest.raises(ValueError):
        RecoveryPolicy(deadline=0.0)
    with pytest.raises(ValueError):
        RecoveryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_factor=0.9)


def test_resilient_policy_excludes_dead_edge_and_pins_stale_slots():
    system = random_fleet(0, 2)
    state = LyapunovState.zeros(2)
    plan = FaultPlan(
        uplink_drop=np.zeros((4, 2), dtype=np.int8),
        uplink_corrupt=np.zeros((4, 2), dtype=np.int8),
        edge_down=np.array([0, 1, 0, 0], dtype=np.int8),
        straggler=np.ones((4, 2)),
        telemetry_stale=np.array([0, 0, 1, 0], dtype=np.int8),
        slot_length=1.0,
    )
    policy = ResilientPolicy(FixedRatioPolicy(0.7, respect_constraint=False), plan)
    healthy = policy.decide(system, state, [0.5, 0.5])
    assert healthy == [0.7, 0.7]
    # Slot 1: edge down — forced device-only.
    assert policy.decide(system, state, [0.5, 0.5]) == [0.0, 0.0]
    # Slot 2: stale telemetry — last-known-good repeated, not recomputed.
    assert policy.decide(system, state, [0.5, 0.5]) == healthy
    # reset() rewinds the cursor.
    policy.reset()
    assert policy.decide(system, state, [0.5, 0.5]) == healthy


# -- fluid overlay --------------------------------------------------------------


def _drop_only_plan(num_slots: int, num_devices: int) -> FaultPlan:
    drop = np.zeros((num_slots, num_devices), dtype=np.int8)
    drop[0, 0] = 1
    return FaultPlan(
        uplink_drop=drop,
        uplink_corrupt=np.zeros_like(drop),
        edge_down=np.zeros(num_slots, dtype=np.int8),
        straggler=np.ones((num_slots, num_devices)),
        telemetry_stale=np.zeros(num_slots, dtype=np.int8),
        slot_length=1.0,
    )


def test_faulty_environment_degrades_only_flagged_slots():
    system = random_fleet(1, 2)
    env = FaultyEnvironment(_drop_only_plan(5, 2))
    rng = np.random.default_rng(0)
    hit = env.devices_at(0, system.devices, rng)
    assert hit[0].link.bandwidth == pytest.approx(
        system.devices[0].link.bandwidth * env.drop_factor
    )
    # The unflagged device and the unflagged slot pass through untouched.
    assert hit[1] is system.devices[1]
    assert env.devices_at(1, system.devices, rng) == tuple(system.devices)
    # Out of range: the healthy world, not a replay of the last row.
    assert env.devices_at(99, system.devices, rng) == tuple(system.devices)


def test_faulty_environment_rejects_wrong_fleet_width():
    env = FaultyEnvironment(_drop_only_plan(5, 3))
    system = random_fleet(1, 2)
    with pytest.raises(ValueError):
        env.devices_at(0, system.devices, np.random.default_rng(0))


def test_faulty_environment_outage_degrades_the_edge():
    plan = canonical_outage_plan(num_slots=60, num_devices=2, seed=0)
    env = FaultyEnvironment(plan)
    system = random_fleet(1, 2)
    start = int(plan.meta["outage_start"])
    degraded = env.system_at(start, system)
    assert degraded.edge_flops == pytest.approx(
        system.edge_flops * env.edge_down_factor
    )
    assert env.system_at(0, system) is system


def test_time_to_recovery_bounds():
    plan = canonical_outage_plan(num_slots=80, num_devices=4, seed=0)
    system = random_fleet(3, 4)
    start, stop = int(plan.meta["outage_start"]), int(plan.meta["outage_stop"])
    result = SlotSimulator(
        system=system,
        arrivals=[PoissonArrivals(0.3)] * 4,
        environment=FaultyEnvironment(plan),
        seed=3,
        vectorized=True,
    ).run(ResilientPolicy(DriftPlusPenaltyPolicy(v=50.0), plan), 80)
    ttr = time_to_recovery(result, start, stop)
    assert ttr == 0.0 or ttr > 0.0  # finite: the resilient policy recovers
    assert not math.isinf(ttr)
    with pytest.raises(ValueError):
        time_to_recovery(result, 10, 10)


# -- event simulator ------------------------------------------------------------


def test_event_sim_recovery_beats_no_recovery():
    """The acceptance contrast: under the canonical outage the recovered
    run completes ≥ 95% while the naive run visibly degrades."""
    system = random_fleet(5, 4, max_arrivals=1.0)
    plan = canonical_outage_plan(num_slots=80, num_devices=4, seed=0)
    results = {}
    for name, recovery in (
        ("recovery", RecoveryPolicy.default()),
        ("none", RecoveryPolicy.none()),
    ):
        results[name] = EventSimulator(
            system=system,
            arrivals=[PoissonArrivals(0.3)] * 4,
            seed=3,
            faults=plan,
            recovery=recovery,
        ).run(DriftPlusPenaltyPolicy(v=50.0), 80, drain_limit_factor=100.0)
    assert results["recovery"].completion_rate >= 0.95
    assert results["none"].completion_rate < results["recovery"].completion_rate
    assert results["recovery"].total_retries > 0
    assert results["none"].total_retries == 0
    summary = slo_summary(results["recovery"], deadline=10.0)
    assert summary["tasks"] == summary["completed"] + summary["dropped"] + summary["in_flight"]
    assert 0.0 <= summary["deadline_miss_rate"] <= 1.0


def test_event_sim_same_seed_fault_runs_are_identical():
    system = random_fleet(5, 2)
    plan = canonical_outage_plan(num_slots=40, num_devices=2, seed=1)

    def run():
        return EventSimulator(
            system=system,
            arrivals=[PoissonArrivals(0.4)] * 2,
            seed=7,
            faults=plan,
            recovery=RecoveryPolicy.default(),
        ).run(DriftPlusPenaltyPolicy(v=50.0), 40, drain_limit_factor=100.0)

    assert run().tasks == run().tasks


def test_event_sim_recovery_requires_faults():
    system = random_fleet(5, 2)
    with pytest.raises(ValueError):
        EventSimulator(
            system=system,
            arrivals=[PoissonArrivals(0.4)] * 2,
            recovery=RecoveryPolicy.default(),
        )


def test_event_sim_rejects_mismatched_plan_width():
    system = random_fleet(5, 2)
    plan = canonical_outage_plan(num_slots=40, num_devices=3, seed=1)
    with pytest.raises(ValueError):
        EventSimulator(
            system=system, arrivals=[PoissonArrivals(0.4)] * 2, faults=plan
        )


# -- live runtime ---------------------------------------------------------------


def test_runtime_replays_faults_with_recovery(small_system):
    plan = canonical_outage_plan(num_slots=12, num_devices=2, seed=0)
    runtime = LeimeRuntime(
        small_system, DriftPlusPenaltyPolicy(v=50.0), speedup=500.0, seed=0
    )
    try:
        report = runtime.run(
            [ConstantArrivals(1.0)] * 2,
            num_slots=12,
            drain_timeout=30.0,
            faults=plan,
            recovery=RecoveryPolicy.default(),
        )
    finally:
        runtime.shutdown()
    assert len(report.tasks) == 24
    assert len(report.tasks) == (
        len(report.completed) + report.dropped_count + report.in_flight_count
    )
    assert report.completion_rate >= 0.9


def test_runtime_recovery_requires_faults(small_system):
    runtime = LeimeRuntime(small_system, FixedRatioPolicy(0.0), speedup=500.0)
    try:
        with pytest.raises(ValueError):
            runtime.run(
                [ConstantArrivals(1.0)] * 2,
                num_slots=2,
                recovery=RecoveryPolicy.default(),
            )
    finally:
        runtime.shutdown()


# -- empty-fleet NaN convention -------------------------------------------------


def test_event_sim_result_empty_statistics_are_nan():
    empty = EventSimResult(tasks=(), horizon=0.0)
    assert math.isnan(empty.completion_rate)
    assert math.isnan(empty.mean_tct)
    assert math.isnan(empty.drop_rate)
    assert math.isnan(empty.deadline_hit_rate(1.0))


def test_runtime_report_empty_statistics_are_nan():
    empty = RuntimeReport(tasks=(), virtual_duration=0.0)
    assert math.isnan(empty.completion_rate)
    assert math.isnan(empty.mean_tct)
    assert math.isnan(empty.drop_rate)
    assert math.isnan(empty.deadline_hit_rate(1.0))


# -- worker-leak warning --------------------------------------------------------


def test_node_shutdown_warns_on_wedged_worker():
    clock = VirtualClock(speedup=1000.0)
    node = RuntimeNode("wedged", flops=1e9, clock=clock)
    import threading

    never = threading.Event()
    node.submit(1.0, lambda _t: never.wait())  # callback blocks forever
    with pytest.warns(RuntimeWarning, match="wedged"):
        assert node.shutdown(join_timeout=0.3) is False
    never.set()  # release the thread so the test process exits cleanly


def test_node_shutdown_clean_returns_true():
    clock = VirtualClock(speedup=1000.0)
    node = RuntimeNode("clean", flops=1e9, clock=clock)
    node.submit(1.0, lambda _t: None)
    assert node.shutdown() is True

"""Property tests for the exit-setting searches (Theorems 1-2).

Sweeps ≥200 randomized :class:`AverageEnvironment`s across all four model
profiles and asserts that branch-and-bound is *exact* (same optimum as the
O(m²) brute force) while evaluating strictly fewer candidates in
aggregate — the Theorem 2 complexity claim.  Seeds appear in the test IDs
so a failing instance reproduces from its name alone.
"""

from __future__ import annotations

import pytest

from repro.core.exit_setting import (
    branch_and_bound_exit_setting,
    brute_force_exit_setting,
)
from repro.models.multi_exit import MultiExitDNN

from tests.helpers import random_environment, random_exit_curve

PROFILES = ("vgg-16", "resnet-34", "inception-v3", "squeezenet-1.0")
SEEDS = range(50)  # 50 seeds × 4 profiles = 200 randomized instances


def _instance(all_profiles, profile: str, seed: int):
    me_dnn = MultiExitDNN(all_profiles[profile], random_exit_curve(seed))
    env = random_environment(seed)
    return me_dnn, env


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
def test_branch_and_bound_is_exact(all_profiles, profile, seed):
    """B&B returns the brute-force optimum — same cost, same triple."""
    me_dnn, env = _instance(all_profiles, profile, seed)
    brute = brute_force_exit_setting(me_dnn, env)
    bnb = branch_and_bound_exit_setting(me_dnn, env)
    assert bnb.cost == brute.cost, f"{profile}, seed {seed}"
    assert bnb.selection == brute.selection, f"{profile}, seed {seed}"
    assert bnb.partition.selection == brute.partition.selection


@pytest.mark.parametrize("profile", PROFILES)
def test_branch_and_bound_prunes_in_aggregate(all_profiles, profile):
    """Across the whole random sweep B&B expands strictly fewer three-exit
    nodes than brute force.  B&B's ``evaluations`` also count the ``m − 2``
    two-exit relaxation lookups of its setup phase, so the node-expansion
    count is ``evaluations − (m − 2)``; a single adversarial instance may
    still expand every node, so pruning is a property of the aggregate."""
    total_bnb_nodes = 0
    total_brute = 0
    for seed in SEEDS:
        me_dnn, env = _instance(all_profiles, profile, seed)
        m = me_dnn.num_exits
        brute = brute_force_exit_setting(me_dnn, env)
        bnb = branch_and_bound_exit_setting(me_dnn, env)
        bnb_nodes = bnb.evaluations - (m - 2)
        total_brute += brute.evaluations
        total_bnb_nodes += bnb_nodes
        # Per-instance sanity: never *more* nodes than the full enumeration.
        assert 0 < bnb_nodes <= brute.evaluations, f"seed {seed}"
    assert total_bnb_nodes < total_brute, (
        f"{profile}: B&B expanded {total_bnb_nodes} nodes vs brute {total_brute}"
    )
    # The average saving should be substantial, not marginal.
    assert total_bnb_nodes <= 0.9 * total_brute


@pytest.mark.parametrize("profile", PROFILES)
def test_brute_force_evaluation_count_is_m_squared(all_profiles, profile):
    """The reference really enumerates every (e₁, e₂) pair once."""
    me_dnn, env = _instance(all_profiles, profile, 0)
    m = me_dnn.num_exits
    brute = brute_force_exit_setting(me_dnn, env)
    assert brute.evaluations == (m - 1) * (m - 2) // 2


@pytest.mark.parametrize("seed", range(10))
def test_selection_is_a_valid_triple(all_profiles, seed):
    me_dnn, env = _instance(all_profiles, "inception-v3", seed)
    result = branch_and_bound_exit_setting(me_dnn, env)
    m = me_dnn.num_exits
    sel = result.selection
    assert 1 <= sel.first < sel.second < sel.third == m
    assert result.cost > 0.0

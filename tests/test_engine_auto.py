"""Engine auto-selection and checkpoint fingerprint hardening.

``engine="auto"`` is a pure wall-clock heuristic: it must resolve to the
scalar reference loop for small fleets (≤ ``AUTO_ENGINE_THRESHOLD``
devices) and can never change results, because the engines are per-task
identical.  Checkpoint fingerprints now carry the kernel tier and the
metric mode, so a checkpoint taken under one configuration refuses a
silent resume under another — resuming a record-mode run in streaming
mode would otherwise silently return a result with no tasks.
"""

from __future__ import annotations

import pytest

from repro.chaos import CheckpointError, Killed, KillSwitch
from repro.core import kernels
from repro.core.offloading import FixedRatioPolicy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import (
    AUTO_ENGINE_THRESHOLD,
    EventSimulator,
    resolve_engine,
)
from repro.sim.simulator import SlotSimulator

from .helpers import random_fleet

SLOTS = 8
N = 3


def _arrivals(system):
    return [PoissonArrivals(d.mean_arrivals) for d in system.devices]


# -- auto resolution --------------------------------------------------------


@pytest.mark.parametrize("devices", [1, 10, 100, AUTO_ENGINE_THRESHOLD])
def test_small_fleets_resolve_to_scalar(devices: int) -> None:
    assert resolve_engine("auto", devices) == "scalar"


def test_large_fleets_resolve_to_fast() -> None:
    assert resolve_engine("auto", AUTO_ENGINE_THRESHOLD + 1) == "fast"


@pytest.mark.parametrize("engine", ["scalar", "fast"])
def test_concrete_engines_pass_through(engine: str) -> None:
    assert resolve_engine(engine, 10) == engine
    assert resolve_engine(engine, 10**6) == engine


@pytest.mark.parametrize("seed", range(3))
def test_auto_results_byte_identical_to_scalar(seed: int) -> None:
    """A small fleet under ``engine="auto"`` replays the scalar engine's
    run byte-for-byte — auto-selection is invisible in the results."""
    system = random_fleet(seed, N, max_arrivals=1.0)

    def run(engine: str):
        return EventSimulator(system, _arrivals(system), seed=seed).run(
            FixedRatioPolicy(0.5),
            SLOTS,
            drain_limit_factor=100.0,
            engine=engine,
        )

    auto, scalar = run("auto"), run("scalar")
    assert auto.tasks == scalar.tasks
    assert auto.horizon == scalar.horizon


def test_run_scheme_defaults_to_auto() -> None:
    import inspect

    from repro.experiments.common import run_scheme

    assert inspect.signature(run_scheme).parameters["engine"].default == "auto"


def test_unknown_engine_is_a_loud_error() -> None:
    system = random_fleet(0, N, max_arrivals=1.0)
    with pytest.raises(ValueError, match="engine"):
        EventSimulator(system, _arrivals(system), seed=0).run(
            FixedRatioPolicy(0.5), SLOTS, engine="turbo"
        )


# -- fingerprint hardening --------------------------------------------------


def _killed_checkpoint(run, kill_slot: int = 2):
    switch = KillSwitch(kill_slot)
    with pytest.raises(Killed) as killed:
        run(checkpoint_every=1, checkpoint_sink=switch)
    return killed.value.checkpoint


@pytest.mark.parametrize("engine", ["scalar", "fast"])
def test_event_resume_refuses_metric_mode_change(engine: str) -> None:
    system = random_fleet(1, N, max_arrivals=1.0)

    def run(metrics="records", **kwargs):
        return EventSimulator(system, _arrivals(system), seed=1).run(
            FixedRatioPolicy(0.5),
            SLOTS,
            drain_limit_factor=100.0,
            engine=engine,
            metrics=metrics,
            **kwargs,
        )

    checkpoint = _killed_checkpoint(run)
    with pytest.raises(CheckpointError):
        run(metrics="streaming", resume_from=checkpoint)
    # Same mode resumes fine.
    resumed = run(resume_from=checkpoint)
    assert resumed.tasks == run().tasks


def test_fluid_resume_refuses_metric_mode_change() -> None:
    system = random_fleet(2, N, max_arrivals=1.0)

    def run(metrics="records", **kwargs):
        return SlotSimulator(system, _arrivals(system), seed=2).run(
            FixedRatioPolicy(0.5), SLOTS, metrics=metrics, **kwargs
        )

    checkpoint = _killed_checkpoint(run)
    with pytest.raises(CheckpointError):
        run(metrics="streaming", resume_from=checkpoint)


def test_event_resume_refuses_kernel_tier_change(monkeypatch) -> None:
    """A checkpoint taken under the NumPy tier must not silently resume
    under a different compiled tier (the tiers are verified identical,
    but the fingerprint refuses to *assume* it)."""
    system = random_fleet(3, N, max_arrivals=1.0)

    def run(**kwargs):
        return EventSimulator(system, _arrivals(system), seed=3).run(
            FixedRatioPolicy(0.5),
            SLOTS,
            drain_limit_factor=100.0,
            engine="fast",
            **kwargs,
        )

    kernels.set_kernel_tier("numpy")
    try:
        checkpoint = _killed_checkpoint(run)
        # Simulate a resume on a machine whose tier resolved differently.
        monkeypatch.setattr(kernels, "_active", "numba")
        with pytest.raises(CheckpointError):
            run(resume_from=checkpoint)
    finally:
        kernels.set_kernel_tier(None)

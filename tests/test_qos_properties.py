"""Property suite for the QoS serving layer (classes, memory, cold starts).

Four families of invariants, each over ≥25 seeded fleets:

* **Identity** — per-class flow conservation
  (``generated = admitted/completed + dropped + shed + in-flight``) holds
  per class and the class rows sum to the global identity, on the fluid
  and event paths, with cold starts and class-aware shedding active.
* **Differential** — with QoS + the governor active, fluid scalar ↔
  vectorized stays byte-identical and event scalar ↔ fast stays
  per-task identical (class tags included).
* **Warm pool** — eviction never loses in-flight (requested-and-warm)
  work, the memory budget is never exceeded by resident partitions, and
  cold-start delays are a pure function of the seed.
* **Sentinels** — every rate over an empty class is NaN, never an
  optimistic zero.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.offloading import DriftPlusPenaltyPolicy
from repro.resilience.overload import OverloadControl
from repro.resilience.qos import QoSClass, QoSConfig, QoSState, assign_classes
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator
from repro.sim.simulator import SlotSimulator

from .helpers import random_fleet

SEEDS = tuple(range(26))
NUM_DEVICES = 4
NUM_SLOTS = 24

#: Aggressive enough that evictions, cold starts, and class-aware
#: shedding all fire inside the short property horizon.
QOS = QoSConfig(memory_fraction=0.35, cold_start_seconds=0.4, shed_budget=25.0)
CONTROL = OverloadControl(
    queue_high=2.0,
    queue_low=0.5,
    token_rate=1.5,
    bucket_depth=3.0,
    queue_capacity=6.0,
)


def _arrivals(system):
    return [PoissonArrivals(d.mean_arrivals) for d in system.devices]


# -- fluid paths: byte identity + per-class conservation ---------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_fluid_scalar_vectorized_identity_with_qos(seed: int) -> None:
    system = random_fleet(seed, NUM_DEVICES, max_arrivals=2.0)

    def run(vectorized: bool):
        return SlotSimulator(
            system,
            _arrivals(system),
            seed=seed,
            vectorized=vectorized,
            overload=CONTROL,
            qos=QOS,
        ).run(DriftPlusPenaltyPolicy(v=50.0, vectorized=vectorized), NUM_SLOTS)

    scalar, vectorized = run(False), run(True)
    assert scalar.records == vectorized.records, seed
    for field in ("generated", "admitted", "shed", "time"):
        assert getattr(scalar.class_flow, field) == getattr(
            vectorized.class_flow, field
        ), (seed, field)

    # Per-class flow conservation, and the rows sum to the global flow.
    gaps = scalar.class_identity_gaps()
    assert all(abs(gap) < 1e-9 for gap in gaps.values()), (seed, gaps)
    flow = scalar.class_flow
    total_arrivals = sum(r.arrivals for r in scalar.records)
    total_shed = sum(r.shed for r in scalar.records)
    assert sum(flow.generated) == pytest.approx(
        total_arrivals + total_shed, abs=1e-9
    ), seed


def test_fluid_qos_exercises_cold_starts_and_shedding() -> None:
    """The sweep above is only meaningful if the machinery actually
    fires: across the seeds, shedding and per-class flow must both be
    non-trivial somewhere."""
    sheds = 0.0
    for seed in SEEDS:
        system = random_fleet(seed, NUM_DEVICES, max_arrivals=2.0)
        result = SlotSimulator(
            system,
            _arrivals(system),
            seed=seed,
            overload=CONTROL,
            qos=QOS,
        ).run(DriftPlusPenaltyPolicy(v=50.0), NUM_SLOTS)
        sheds += sum(result.class_flow.shed)
    assert sheds > 0.0


# -- event paths: scalar ↔ fast per-task identity ---------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_event_scalar_fast_identity_with_qos(seed: int) -> None:
    system = random_fleet(seed, NUM_DEVICES, max_arrivals=2.0)

    def run(engine: str):
        return EventSimulator(
            system,
            _arrivals(system),
            seed=seed,
            overload=CONTROL,
            qos=QOS,
        ).run(
            DriftPlusPenaltyPolicy(v=50.0),
            NUM_SLOTS,
            engine=engine,
            drain_limit_factor=100.0,
        )

    scalar, fast = run("scalar"), run("fast")
    assert len(scalar.tasks) == len(fast.tasks), seed
    for ta, tb in zip(scalar.tasks, fast.tasks):
        ctx = (seed, ta.task_id)
        assert ta.task_id == tb.task_id, ctx
        assert ta.device == tb.device, ctx
        assert ta.qos == tb.qos, ctx
        assert ta.offloaded == tb.offloaded, ctx
        assert ta.exit_tier == tb.exit_tier, ctx
        assert ta.shed == tb.shed, ctx
        assert ta.dropped == tb.dropped, ctx
        assert (ta.completed is None) == (tb.completed is None), ctx
        if ta.completed is not None:
            assert ta.completed == pytest.approx(tb.completed, abs=1e-9), ctx

    # Per-class conservation and the sum-to-global property.
    gaps = scalar.class_identity_gaps()
    assert all(gap == 0 for gap in gaps.values()), (seed, gaps)
    counts = scalar.class_counts()
    assert sum(row["generated"] for row in counts.values()) == len(
        scalar.tasks
    ), seed
    assert sum(row["shed"] for row in counts.values()) == sum(
        1 for t in scalar.tasks if t.shed
    ), seed


def test_event_qos_tags_every_task() -> None:
    system = random_fleet(3, NUM_DEVICES, max_arrivals=2.0)
    result = EventSimulator(
        system, _arrivals(system), seed=3, overload=CONTROL, qos=QOS
    ).run(DriftPlusPenaltyPolicy(v=50.0), NUM_SLOTS)
    names = set(result.class_names)
    assert names == {"gold", "standard", "batch"}
    assert result.tasks, "sweep should generate work"
    assert all(t.qos in names for t in result.tasks)


# -- warm pool invariants ----------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_eviction_never_loses_in_flight_work(seed: int) -> None:
    """Random request sequences through the warm pool: a warm slice
    serving work this slot is displaced only by a strictly
    higher-priority cold load (never gratuitously), a surviving warm
    slice is never charged a re-load, and the resident set never
    exceeds the memory budget."""
    system = random_fleet(seed, 6, max_arrivals=1.0)
    state = QoSState(QoSConfig(memory_fraction=0.4), system, seed)
    rng = np.random.default_rng(seed)
    tau = system.slot_length
    for slot in range(60):
        requested = [bool(b) for b in rng.random(6) < 0.6]
        warm_before = {
            i
            for i in range(6)
            if requested[i] and i in state.resident
        }
        holds = state.on_slot(slot, slot * tau, requested)
        loaded = {i for i, _ in state.loads_this_slot}
        # A warm requested slice is displaced (evicted, or forced
        # through a cold reload) only by a strictly higher-priority
        # cold load — never gratuitously.
        displaced = {
            i
            for i in warm_before
            if i in loaded or i not in state.resident
        }
        for i in displaced:
            assert any(
                (state.class_at(j).weight, -j)
                > (state.class_at(i).weight, -i)
                for j in loaded - {i}
            ), (seed, slot, i)
        # Budget is a hard cap on residency.
        used = sum(state.footprints[i] for i in state.resident)
        assert used <= state.budget + 1e-6, (seed, slot, used)
        # A hold at most defers by the device's load latency (values
        # below w0 mean "already warm — no hold").
        assert all(
            h <= slot * tau + max(state.load_seconds) + 1e-12 for h in holds
        ), (seed, slot)


def test_heavy_eviction_still_conserves_every_task() -> None:
    """The engine-level meaning of 'eviction never loses in-flight
    work': under a memory budget tight enough to thrash, every generated
    task still lands in exactly one terminal bucket, per class."""
    tight = QoSConfig(memory_fraction=0.15, cold_start_seconds=0.6)
    for seed in range(8):
        system = random_fleet(seed, 6, max_arrivals=2.0)
        result = EventSimulator(
            system,
            _arrivals(system),
            seed=seed,
            overload=CONTROL,
            qos=tight,
        ).run(DriftPlusPenaltyPolicy(v=50.0), NUM_SLOTS)
        gaps = result.class_identity_gaps()
        assert all(gap == 0 for gap in gaps.values()), (seed, gaps)
        counts = result.class_counts()
        assert sum(row["generated"] for row in counts.values()) == len(
            result.tasks
        ), seed


@pytest.mark.parametrize("seed", tuple(range(25)))
def test_cold_start_delays_deterministic_per_seed(seed: int) -> None:
    system = random_fleet(seed, NUM_DEVICES, max_arrivals=1.0)
    first = QoSState(QOS, system, seed)
    second = QoSState(QOS, system, seed)
    assert first.load_seconds == second.load_seconds
    assert first.class_of == second.class_of
    other = QoSState(QOS, system, seed + 1)
    assert (
        other.load_seconds != first.load_seconds
        or other.class_of != first.class_of
    )
    # Jitter stays inside the configured band.
    low = QOS.cold_start_seconds
    high = QOS.cold_start_seconds * (1.0 + QOS.cold_start_jitter)
    assert all(low <= s <= high for s in first.load_seconds)


def test_class_assignment_ignores_arrival_and_exit_streams() -> None:
    """Class assignment draws from its own salted stream: attaching QoS
    must not perturb the arrival draws of an existing run (the no-QoS
    and QoS runs see identical demand)."""
    system = random_fleet(7, NUM_DEVICES, max_arrivals=1.0)
    bare = SlotSimulator(system, _arrivals(system), seed=7).run(
        DriftPlusPenaltyPolicy(v=50.0), NUM_SLOTS
    )
    qos = SlotSimulator(
        system, _arrivals(system), seed=7, qos=QoSConfig()
    ).run(DriftPlusPenaltyPolicy(v=50.0), NUM_SLOTS)
    assert [r.arrivals for r in qos.records] == [
        r.arrivals for r in bare.records
    ]


# -- empty-class sentinels ---------------------------------------------------


def _all_gold() -> QoSConfig:
    """Every device pinned to class 0 — standard and batch stay empty."""
    return QoSConfig(class_map=(0,) * NUM_DEVICES)


def test_empty_class_rates_are_nan_event_path() -> None:
    system = random_fleet(1, NUM_DEVICES, max_arrivals=1.0)
    result = EventSimulator(
        system, _arrivals(system), seed=1, qos=_all_gold()
    ).run(DriftPlusPenaltyPolicy(v=50.0), NUM_SLOTS)
    summary = result.class_summary(deadlines={"standard": 3.0})
    assert summary["gold"]["generated"] > 0
    for empty in ("standard", "batch"):
        row = summary[empty]
        assert row["generated"] == 0
        for rate in ("completion_rate", "drop_rate", "shed_rate", "mean_tct",
                     "p99_tct"):
            assert math.isnan(row[rate]), (empty, rate, row[rate])
    assert math.isnan(summary["standard"]["deadline_miss_rate"])
    # Identity gaps are still defined (and zero) for empty classes.
    assert result.class_identity_gaps()["batch"] == 0


def test_empty_class_rates_are_nan_fluid_path() -> None:
    system = random_fleet(1, NUM_DEVICES, max_arrivals=1.0)
    result = SlotSimulator(
        system, _arrivals(system), seed=1, qos=_all_gold()
    ).run(DriftPlusPenaltyPolicy(v=50.0), NUM_SLOTS)
    summary = result.qos_summary()
    for empty in ("standard", "batch"):
        row = summary[empty]
        assert row["generated"] == 0.0
        assert math.isnan(row["shed_rate"]), empty
        assert math.isnan(row["admit_rate"]), empty
        assert math.isnan(row["mean_tct"]), empty
    assert summary["gold"]["generated"] > 0


def test_qos_accessors_loud_without_config() -> None:
    system = random_fleet(2, NUM_DEVICES, max_arrivals=1.0)
    result = SlotSimulator(system, _arrivals(system), seed=2).run(
        DriftPlusPenaltyPolicy(v=50.0), NUM_SLOTS
    )
    with pytest.raises(ValueError, match="qos"):
        result.qos_summary()
    event = EventSimulator(system, _arrivals(system), seed=2).run(
        DriftPlusPenaltyPolicy(v=50.0), NUM_SLOTS
    )
    with pytest.raises(ValueError, match="qos"):
        event.class_summary()


# -- config validation -------------------------------------------------------


def test_qos_config_validation_is_loud() -> None:
    with pytest.raises(ValueError):
        QoSConfig(memory_fraction=0.0)
    with pytest.raises(ValueError):
        QoSConfig(cold_start_seconds=-1.0)
    with pytest.raises(ValueError):
        QoSClass(
            name="x", share=0.0, weight=1.0, deadline=1.0, rung_bias=0
        )
    with pytest.raises(ValueError):
        QoSConfig(class_map=(0, 7))


def test_assign_classes_honours_shares() -> None:
    """Over a wide fleet the seeded assignment tracks the configured
    shares (law of large numbers, loose band)."""
    config = QoSConfig()
    classes = assign_classes(config, 3000, seed=5)
    fractions = [classes.count(c) / 3000 for c in range(3)]
    for fraction, cls in zip(fractions, config.classes):
        assert abs(fraction - cls.share) < 0.05, (fraction, cls.share)

"""Integration tests: the experiment harnesses reproduce the paper's shapes.

These run reduced horizons (the benchmarks run the full ones); what they
assert is the *qualitative* content of each figure — orderings, directions
of movement, crossovers — per DESIGN.md's shape-target policy.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2, fig3
from repro.experiments.common import (
    SCHEME_BUILDERS,
    TestbedConfig,
    compare_schemes,
    format_rows,
    speedup_over,
)


# -- Fig. 2 --------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig2_result():
    return fig2.run_fig2()


def test_fig2a_device_capability_shifts_first_exit(fig2_result):
    pi, nano = fig2_result.device_sweeps
    assert pi.label == "raspberry-pi"
    assert nano.optimal_exit > pi.optimal_exit


def test_fig2b_edge_load_shifts_second_exit(fig2_result):
    light, heavy = fig2_result.load_sweeps
    assert heavy.optimal_exit < light.optimal_exit


def test_fig2cd_models_differ(fig2_result):
    first_optima = {s.label: s.optimal_exit for s in fig2_result.model_first_sweeps}
    second_optima = {s.label: s.optimal_exit for s in fig2_result.model_second_sweeps}
    assert len(set(first_optima.values())) > 1 or len(set(second_optima.values())) > 1


def test_fig2_normalized_latency_has_unit_minimum(fig2_result):
    for sweep in fig2_result.device_sweeps + fig2_result.load_sweeps:
        assert min(sweep.normalized_latency) == pytest.approx(1.0)
        assert max(sweep.normalized_latency) > 1.0


# -- Fig. 3 --------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig3_result():
    return fig3.run_fig3(num_slots=100, seed=0)


def test_fig3_optimal_ratio_moves_with_arrival_rate(fig3_result):
    optima = [c.optimal_ratio for c in fig3_result.arrival_curves]
    assert len(set(optima)) > 1


def test_fig3_complexity_shifts_ratio_up(fig3_result):
    """Easier data (higher σ₁) keeps more work local or shifts the optimum;
    at minimum the optima must differ across the sweep."""
    optima = [c.optimal_ratio for c in fig3_result.complexity_curves]
    assert len(set(optima)) > 1


def test_fig3_low_bandwidth_forces_full_offloading(fig3_result):
    """Paper: at 8 Mbps the optimal ratio is 1."""
    low_bw = fig3_result.bandwidth_curves[0]
    assert low_bw.label.startswith("8")
    assert low_bw.optimal_ratio == pytest.approx(1.0)


def test_fig3_high_bandwidth_lowers_ratio(fig3_result):
    low_bw = fig3_result.bandwidth_curves[0]
    high_bw = fig3_result.bandwidth_curves[-1]
    assert high_bw.optimal_ratio < low_bw.optimal_ratio


def test_fig3_latency_moves_ratio(fig3_result):
    optima = [c.optimal_ratio for c in fig3_result.latency_curves]
    assert len(set(optima)) > 1
    # Higher propagation delay penalises the per-task d0 upload more than
    # the (1-σ₁)-weighted intermediate upload, so the optimum falls.
    assert optima[-1] <= optima[0]


def test_fig3_curves_cover_grid(fig3_result):
    for curves in fig3_result.all_panels().values():
        for curve in curves:
            assert curve.ratios == fig3.RATIO_GRID
            assert len(curve.mean_tct) == len(curve.ratios)
            assert all(t > 0 for t in curve.mean_tct)


# -- Fig. 7/8-style comparisons (reduced) ---------------------------------------


@pytest.fixture(scope="module")
def comparison_results():
    config = TestbedConfig(model="inception-v3", num_devices=4, arrival_rate=0.2)
    return compare_schemes(
        config, tuple(SCHEME_BUILDERS), num_slots=80, seed=0, simulator="event"
    )


def test_leime_beats_benchmarks_on_default_testbed(comparison_results):
    speedups = speedup_over(comparison_results)
    assert speedups["LEIME"] == pytest.approx(1.0)
    for name in ("Neurosurgeon", "Edgent", "DDNN"):
        assert speedups[name] > 1.2, f"{name} should lose clearly on the Pi"


def test_all_schemes_complete_tasks(comparison_results):
    for name, result in comparison_results.items():
        assert result.completion_rate == 1.0, name


def test_format_rows_alignment():
    table = format_rows(("a", "bb"), [("x", 1), ("yy", 22)])
    lines = table.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_replication_confidence_intervals():
    from repro.experiments.common import ReplicatedResult, replicate_scheme

    config = TestbedConfig(
        model="squeezenet-1.0", num_devices=2, arrival_rate=0.4
    )
    result = replicate_scheme(
        config, "LEIME", seeds=(0, 1, 2), num_slots=60
    )
    assert len(result.values) == 3
    assert result.mean > 0
    assert result.ci95_halfwidth() >= 0
    # Seeds genuinely vary the outcome.
    assert result.std > 0

    with pytest.raises(ValueError):
        ReplicatedResult(scheme="x", values=())
    single = ReplicatedResult(scheme="x", values=(1.0,))
    assert single.ci95_halfwidth() == 0.0


def test_leime_wins_with_error_bars():
    """The Fig. 7 headline holds beyond one seed: LEIME's upper CI bound
    stays below DDNN's lower bound."""
    from repro.experiments.common import replicate_scheme

    config = TestbedConfig(model="inception-v3", num_devices=2, arrival_rate=0.2)
    leime = replicate_scheme(config, "LEIME", seeds=(0, 1, 2), num_slots=80)
    ddnn = replicate_scheme(config, "DDNN", seeds=(0, 1, 2), num_slots=80)
    assert leime.mean + leime.ci95_halfwidth() < ddnn.mean - ddnn.ci95_halfwidth()


# -- fig_faults -----------------------------------------------------------------


@pytest.fixture(scope="module")
def fig_faults_result():
    from repro.experiments.fig_faults import run_fig_faults

    return run_fig_faults(num_slots=60, seed=0, arrival_rate=0.3)


def test_fig_faults_recovery_meets_the_slo(fig_faults_result):
    """The acceptance scenario: LEIME + recovery completes ≥ 95% under
    the canonical outage while the naive runs visibly degrade."""
    recovered = fig_faults_result.by_scheme("LEIME + recovery")
    naive = fig_faults_result.by_scheme("LEIME (no recovery)")
    assert recovered.completion_rate >= 0.95
    assert naive.completion_rate < recovered.completion_rate
    assert recovered.retries > 0 and naive.retries == 0


def test_fig_faults_fluid_stays_bounded(fig_faults_result):
    import math

    leime = fig_faults_result.fluid_by_scheme("LEIME + recovery")
    assert leime.stable
    assert not math.isinf(leime.recovery_slots)


def test_fig_faults_paths_are_byte_identical(fig_faults_result):
    assert fig_faults_result.paths_identical

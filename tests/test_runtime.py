"""The live threaded runtime prototype."""

from __future__ import annotations

import pytest

from repro.core.offloading import DriftPlusPenaltyPolicy, FixedRatioPolicy
from repro.runtime import LeimeRuntime, RuntimeLink, RuntimeNode, VirtualClock
from repro.hardware import NetworkProfile
from repro.sim.arrivals import ConstantArrivals


# -- clock ---------------------------------------------------------------------


def test_virtual_clock_scales():
    clock = VirtualClock(speedup=1000.0)
    before = clock.now()
    clock.sleep(1.0)  # 1 virtual second = 1 ms wall
    after = clock.now()
    assert after - before >= 1.0
    assert after - before < 500.0  # far less than 500 virtual seconds


def test_virtual_clock_validation():
    with pytest.raises(ValueError):
        VirtualClock(speedup=0.0)
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.sleep(-1.0)


# -- nodes ----------------------------------------------------------------------


def test_runtime_node_processes_fifo():
    clock = VirtualClock(speedup=2000.0)
    node = RuntimeNode("worker", flops=1e9, clock=clock)
    finished = []
    try:
        node.submit(1e9, lambda t: finished.append(("a", t)))  # 1 virtual s
        node.submit(1e9, lambda t: finished.append(("b", t)))
        node.shutdown()
    finally:
        pass
    assert [name for name, _ in finished] == ["a", "b"]
    assert finished[1][1] > finished[0][1]
    assert node.jobs_done == 2


def test_runtime_node_validation():
    clock = VirtualClock(speedup=1000.0)
    with pytest.raises(ValueError):
        RuntimeNode("bad", flops=0.0, clock=clock)
    node = RuntimeNode("ok", flops=1e9, clock=clock)
    with pytest.raises(ValueError):
        node.submit(-1.0, lambda t: None)
    node.shutdown()


def test_runtime_node_capacity_rejects_when_full():
    """A bounded node refuses submissions past its capacity instead of
    queueing without limit; accepted work still completes."""
    clock = VirtualClock(speedup=1000.0)
    node = RuntimeNode("bounded", flops=1e9, clock=clock, capacity=1)
    outcomes = []
    try:
        # Each job runs ~0.3 s wall, so the flood below lands while the
        # worker is busy and the single queue slot fills immediately.
        outcomes = [node.submit(3e11, lambda t: None) for _ in range(5)]
    finally:
        node.shutdown(join_timeout=10.0)
    accepted = sum(outcomes)
    assert accepted + node.jobs_rejected == 5
    # The worker can steal at most one job off the queue mid-flood.
    assert accepted <= 2
    assert node.jobs_rejected >= 3
    assert node.jobs_done == accepted


def test_runtime_node_capacity_validation():
    clock = VirtualClock(speedup=1000.0)
    with pytest.raises(ValueError):
        RuntimeNode("bad", flops=1e9, clock=clock, capacity=0)


def test_runtime_link_shutdown_drains_propagation_timers():
    """shutdown() joins in-flight propagation timers: every transmitted
    payload has been delivered by the time it returns, and the return
    value reports a clean stop."""
    clock = VirtualClock(speedup=1000.0)
    link = RuntimeLink(
        "hop", NetworkProfile(bandwidth=1e9, latency=2.0), clock
    )
    deliveries = []
    for _ in range(3):
        assert link.transmit(1e3, deliveries.append)
    clean = link.shutdown()
    assert clean
    # No sleeping: the drain happened inside shutdown, not after it.
    assert len(deliveries) == 3


def test_empty_runtime_report_rates_are_nan():
    """Statistics over zero tasks are NaN, never an optimistic number —
    including the overload layer's shed_rate."""
    import math

    from repro.runtime.system import RuntimeReport

    report = RuntimeReport(tasks=(), virtual_duration=0.0)
    assert math.isnan(report.completion_rate)
    assert math.isnan(report.mean_tct)
    assert math.isnan(report.drop_rate)
    assert math.isnan(report.shed_rate)
    assert report.shed_count == 0
    assert report.dropped_count == 0
    assert report.in_flight_count == 0


def test_runtime_link_delivers_after_latency():
    clock = VirtualClock(speedup=2000.0)
    link = RuntimeLink(
        "hop", NetworkProfile(bandwidth=1e6, latency=1.0), clock
    )
    deliveries = []
    link.transmit(1e6, lambda t: deliveries.append(t))  # 1 s serialise + 1 s prop
    link.shutdown()
    import time

    deadline = time.monotonic() + 5.0
    while not deliveries and time.monotonic() < deadline:
        time.sleep(0.005)
    assert deliveries, "delivery never arrived"
    assert deliveries[0] >= 2.0 * 0.9  # ~2 virtual seconds, loose bound


# -- full runtime -----------------------------------------------------------------


@pytest.mark.parametrize(
    "policy", [FixedRatioPolicy(0.5), DriftPlusPenaltyPolicy(v=50.0)],
    ids=["fixed", "leime"],
)
def test_runtime_completes_all_tasks(small_system, policy):
    runtime = LeimeRuntime(small_system, policy, speedup=500.0, seed=0)
    try:
        report = runtime.run(
            [ConstantArrivals(1.0)] * 2, num_slots=8, drain_timeout=30.0
        )
    finally:
        runtime.shutdown()
    assert len(report.tasks) == 16
    assert report.completion_rate == 1.0
    assert report.mean_tct > 0
    tier1, tier2, tier3 = report.exit_fractions()
    assert tier1 + tier2 + tier3 == pytest.approx(1.0)


def test_runtime_latency_compatible_with_event_sim(small_system):
    """The live threads and the event simulator describe the same system:
    their mean TCTs agree within a loose factor (thread scheduling adds
    jitter; the expectation must not)."""
    from repro.sim.events import EventSimulator

    arrivals = [ConstantArrivals(1.0)] * 2
    simulated = EventSimulator(
        system=small_system, arrivals=arrivals, seed=3
    ).run(FixedRatioPolicy(1.0), 20)
    # Moderate speedup: at high factors, millisecond thread-scheduling
    # jitter is magnified into whole virtual seconds and distorts latency.
    runtime = LeimeRuntime(
        small_system, FixedRatioPolicy(1.0), speedup=40.0, seed=3
    )
    try:
        live = runtime.run(arrivals, num_slots=20, drain_timeout=30.0)
    finally:
        runtime.shutdown()
    assert live.completion_rate == 1.0
    assert live.mean_tct == pytest.approx(simulated.mean_tct, rel=0.5)


def test_runtime_arrival_count_validation(small_system):
    runtime = LeimeRuntime(small_system, FixedRatioPolicy(0.0), speedup=500.0)
    try:
        with pytest.raises(ValueError):
            runtime.run([ConstantArrivals(1.0)], num_slots=2)
    finally:
        runtime.shutdown()

"""Trace replay across the scalar, vectorized, and runtime paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import AdaptiveExitController
from repro.core.exit_setting import AverageEnvironment
from repro.core.offloading import DriftPlusPenaltyPolicy
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.models.zoo import build_model
from repro.runtime import LeimeRuntime
from repro.sim.arrivals import ConstantArrivals
from repro.sim.simulator import SlotSimulator
from repro.traces.drift import BandwidthDriftMonitor
from repro.traces.generators import WildTraceSpec, generate_trace
from repro.traces.replay import TraceEnvironment, arrival_processes, replay_trace
from repro.traces.schema import Trace, TraceChannel

from tests.helpers import make_system, random_fleet


def _wild_trace(num_slots: int, num_devices: int, seed: int) -> Trace:
    """All four dynamics on, with enough churn to exercise the NaN path."""
    return generate_trace(
        WildTraceSpec(
            num_slots=num_slots,
            num_devices=num_devices,
            churn_down=0.05,
            churn_up=0.3,
        ),
        seed=seed,
    )


def _records_identical(a, b) -> bool:
    return len(a.records) == len(b.records) and all(
        ra.queue_local == rb.queue_local
        and ra.queue_edge == rb.queue_edge
        and ra.arrivals == rb.arrivals
        and ra.ratios == rb.ratios
        and ra.total_time == rb.total_time
        for ra, rb in zip(a.records, b.records)
    )


# -- the acceptance differential ------------------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_scalar_and_vectorized_replay_byte_identical(seed):
    """ISSUE acceptance: the same seed and the same trace through the
    scalar SlotSimulator and the VectorizedSlotEngine produce byte-identical
    queue/cost trajectories."""
    system = random_fleet(seed, 3)
    trace = _wild_trace(40, 3, seed)
    policy = DriftPlusPenaltyPolicy(v=50.0)
    scalar = replay_trace(system, trace, policy, seed=seed)
    fast = replay_trace(system, trace, policy, seed=seed, vectorized=True)
    assert _records_identical(scalar, fast)


def test_replay_is_deterministic():
    system = random_fleet(7, 2)
    trace = _wild_trace(30, 2, 7)
    policy = DriftPlusPenaltyPolicy(v=50.0)
    first = replay_trace(system, trace, policy, seed=1)
    second = replay_trace(system, trace, policy, seed=1)
    assert _records_identical(first, second)


def test_replay_cycles_past_trace_end():
    system = random_fleet(2, 2)
    trace = _wild_trace(10, 2, 2)
    policy = DriftPlusPenaltyPolicy(v=50.0)
    long = replay_trace(system, trace, policy, num_slots=25, seed=0)
    assert len(long.records) == 25
    fast = replay_trace(
        system, trace, policy, num_slots=25, seed=0, vectorized=True
    )
    assert _records_identical(long, fast)


def test_replay_rejects_device_count_mismatch():
    system = make_system()  # 2 devices
    trace = _wild_trace(10, 3, 0)
    with pytest.raises(ValueError):
        replay_trace(system, trace, DriftPlusPenaltyPolicy(v=50.0))


# -- arrival gating --------------------------------------------------------------


def test_arrivals_gated_by_churn_mask():
    trace = generate_trace(
        WildTraceSpec(num_slots=120, num_devices=3, churn_down=0.15), seed=4
    )
    processes = arrival_processes(trace)
    assert len(processes) == 3
    down_seen = 0
    for t in range(trace.num_slots):
        up = trace.up_at(t)
        for i, process in enumerate(processes):
            if not up[i]:
                assert process.mean(t) == 0.0
                down_seen += 1
            else:
                assert process.mean(t) > 0.0
    assert down_seen > 0, "fixture should contain down slots"


def test_arrival_processes_require_rate_channel():
    trace = Trace(channels=(TraceChannel("bandwidth", np.full((4, 2), 1e6)),))
    with pytest.raises(ValueError):
        arrival_processes(trace)


# -- TraceEnvironment ------------------------------------------------------------


def test_devices_at_overrides_links_only_while_up():
    up = np.ones((3, 2))
    up[1, 0] = 0.0
    bandwidth = np.full((3, 2), 2e6)
    bandwidth[1, 0] = np.nan
    trace = Trace(
        channels=(
            TraceChannel("bandwidth", bandwidth),
            TraceChannel("up", up),
        )
    )
    environment = TraceEnvironment(trace)
    system = make_system()
    rng = np.random.default_rng(0)
    live = environment.devices_at(0, system.devices, rng)
    assert all(d.link.bandwidth == 2e6 for d in live)
    assert all(
        d.link.latency == base.link.latency
        for d, base in zip(live, system.devices)
    )
    # Slot 1: device 0 is down and keeps its configured baseline link.
    live = environment.devices_at(1, system.devices, rng)
    assert live[0] is system.devices[0]
    assert live[1].link.bandwidth == 2e6


def test_devices_at_rejects_width_mismatch():
    trace = _wild_trace(5, 3, 0)
    environment = TraceEnvironment(trace)
    system = make_system()  # 2 devices
    with pytest.raises(ValueError):
        environment.devices_at(0, system.devices, np.random.default_rng(0))


def test_system_at_scales_edge_capacity():
    system = make_system()
    flops = np.array([system.edge_flops, system.edge_flops / 2.0, 1e9])
    trace = Trace(channels=(TraceChannel("edge_flops", flops),))
    environment = TraceEnvironment(trace)
    # Unchanged capacity: the very same object back (no re-validation).
    assert environment.system_at(0, system) is system
    halved = environment.system_at(1, system)
    assert halved.edge_flops == system.edge_flops / 2.0
    assert halved.shares == system.shares
    # Cycle semantics wrap the slot index.
    assert environment.system_at(4, system).edge_flops == halved.edge_flops


def test_edge_capacity_changes_the_simulation():
    """Halving edge capacity mid-trace must show up in the trajectories —
    proof the simulator actually consumes ``system_at``."""
    system = make_system()
    num_slots = 12
    constant = np.full(num_slots, system.edge_flops)
    choked = constant.copy()
    choked[num_slots // 2 :] = system.edge_flops / 20.0
    policy = DriftPlusPenaltyPolicy(v=50.0)

    def run(edge_series):
        trace = Trace(channels=(TraceChannel("edge_flops", edge_series),))
        return SlotSimulator(
            system=system,
            arrivals=[ConstantArrivals(1.0)] * 2,
            environment=TraceEnvironment(trace),
            seed=0,
        ).run(policy, num_slots)

    baseline = run(constant)
    degraded = run(choked)
    # Identical until the choke point, different after.
    half = num_slots // 2
    assert _records_identical_prefix(baseline, degraded, half)
    assert degraded.mean_tct > baseline.mean_tct


def _records_identical_prefix(a, b, n: int) -> bool:
    return all(
        ra.total_time == rb.total_time and ra.ratios == rb.ratios
        for ra, rb in zip(a.records[:n], b.records[:n])
    )


# -- drift-driven re-planning ----------------------------------------------------


@pytest.fixture(scope="module")
def planner_environment():
    return AverageEnvironment.from_platforms(
        RASPBERRY_PI_3B,
        EDGE_I7_3770,
        CLOUD_V100,
        WIFI_DEVICE_EDGE,
        INTERNET_EDGE_CLOUD,
        edge_share=0.25,
    )


def _step_trace(planned_bandwidth: float, factor: float, num_slots: int = 20):
    """Bandwidth at the planned level, then dropped to ``factor`` of it."""
    bandwidth = np.full((num_slots, 2), planned_bandwidth)
    bandwidth[num_slots // 2 :] = planned_bandwidth * factor
    return Trace(channels=(TraceChannel("bandwidth", bandwidth),))


def test_monitor_replans_on_sustained_drift(planner_environment):
    controller = AdaptiveExitController(
        profile=build_model("inception-v3"), environment=planner_environment
    )
    planned = planner_environment.device_edge.bandwidth
    monitor = BandwidthDriftMonitor(
        trace=_step_trace(planned, 0.3),
        controller=controller,
        threshold=0.3,
        window=2,
        cooldown=5,
    )
    fired = [slot for slot in range(20) if monitor.on_slot(slot)]
    assert fired, "a 70% bandwidth drop must trigger a re-plan"
    assert monitor.replan_count == len(fired) == len(monitor.replanned_slots)
    assert all(slot >= 10 for slot in fired)
    assert controller.replan_count == len(fired)
    # Cooldown hysteresis: consecutive firings are spaced apart.
    assert all(b - a > 5 for a, b in zip(fired, fired[1:]))
    # The controller now plans against the drifted bandwidth.
    assert controller.environment.device_edge.bandwidth == pytest.approx(
        planned * 0.3
    )


def test_monitor_quiet_without_drift(planner_environment):
    controller = AdaptiveExitController(
        profile=build_model("inception-v3"), environment=planner_environment
    )
    planned = planner_environment.device_edge.bandwidth
    monitor = BandwidthDriftMonitor(
        trace=_step_trace(planned, 1.0),
        controller=controller,
        threshold=0.3,
        window=2,
        cooldown=0,
    )
    assert not any(monitor.on_slot(slot) for slot in range(20))
    assert monitor.replan_count == 0
    assert controller.replan_count == 0


def test_monitor_validation(planner_environment):
    controller = AdaptiveExitController(
        profile=build_model("inception-v3"), environment=planner_environment
    )
    planned = planner_environment.device_edge.bandwidth
    trace = _step_trace(planned, 0.5)
    with pytest.raises(ValueError):
        BandwidthDriftMonitor(trace=trace, controller=controller, threshold=0.0)
    with pytest.raises(ValueError):
        BandwidthDriftMonitor(trace=trace, controller=controller, window=0)
    no_bandwidth = Trace(
        channels=(TraceChannel("arrival_rate", np.ones((4, 2))),)
    )
    with pytest.raises(ValueError):
        BandwidthDriftMonitor(trace=no_bandwidth, controller=controller)


def test_replan_for_environment_swaps_plan(planner_environment):
    controller = AdaptiveExitController(
        profile=build_model("inception-v3"), environment=planner_environment
    )
    before = controller.plan
    from dataclasses import replace

    from repro.hardware import NetworkProfile

    slow = replace(
        planner_environment,
        device_edge=NetworkProfile(
            planner_environment.device_edge.bandwidth * 0.1,
            planner_environment.device_edge.latency,
        ),
    )
    plan = controller.replan_for_environment(slow)
    assert controller.replan_count == 1
    assert controller.plan is plan
    assert controller.environment is slow
    assert plan is not before


def test_drift_monitor_hot_swaps_runtime_partition(planner_environment):
    """End to end across the runtime path: the slot hook fires mid-run and
    the re-planned partition is live on the runtime afterwards."""
    controller = AdaptiveExitController(
        profile=build_model("inception-v3"), environment=planner_environment
    )
    planned = planner_environment.device_edge.bandwidth
    system = make_system(partition=controller.plan.partition)
    runtime = LeimeRuntime(
        system, DriftPlusPenaltyPolicy(v=50.0), speedup=2000.0, seed=0
    )
    monitor = BandwidthDriftMonitor(
        trace=_step_trace(planned, 0.2, num_slots=8),
        controller=controller,
        runtime=runtime,
        threshold=0.3,
        window=2,
        cooldown=0,
    )
    try:
        report = runtime.run(
            [ConstantArrivals(1.0)] * 2,
            num_slots=8,
            drain_timeout=30.0,
            slot_hook=monitor.on_slot,
        )
    finally:
        runtime.shutdown()
    assert report.completion_rate == 1.0
    assert monitor.replan_count >= 1
    assert runtime.system.partition is controller.plan.partition
    assert runtime.system.device_partitions == ()

"""The optional compiled kernel tier: resolution, fallback, exactness.

The tier machinery must behave identically whether or not ``numba`` is
installed: resolution tests run everywhere (the ``numba`` request warns
and degrades to NumPy when the import fails), while the differential
suite — per-task bitwise equality of the Numba and NumPy tiers across a
seeded fault grid — runs only where numba is importable and skips
gracefully otherwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels
from repro.core.offloading import FixedRatioPolicy
from repro.resilience.faults import (
    FaultPlanSpec,
    canonical_outage_plan,
    generate_fault_plan,
)
from repro.resilience.recovery import RecoveryPolicy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator

from .helpers import random_fleet

SLOTS = 8
N = 3


@pytest.fixture(autouse=True)
def _restore_tier():
    """Every test leaves the process-global tier as it found it."""
    active, compiled = kernels._active, kernels._compiled
    yield
    kernels._active, kernels._compiled = active, compiled


# -- tier resolution --------------------------------------------------------


def test_default_tier_is_numpy(monkeypatch) -> None:
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    kernels._active = None
    assert kernels.kernel_tier() == "numpy"
    assert not kernels.use_numba()


def test_env_flag_resolves_on_first_call(monkeypatch) -> None:
    monkeypatch.setenv("REPRO_KERNELS", "auto")
    kernels._active = None
    expected = "numba" if kernels.numba_available() else "numpy"
    assert kernels.kernel_tier() == expected


def test_unknown_tier_is_a_loud_error() -> None:
    with pytest.raises(ValueError, match="unknown kernel tier"):
        kernels.set_kernel_tier("cuda")


def test_set_tier_none_rereads_environment(monkeypatch) -> None:
    monkeypatch.setenv("REPRO_KERNELS", "numpy")
    kernels.set_kernel_tier("auto")
    assert kernels.set_kernel_tier(None) == "numpy"


@pytest.mark.skipif(
    kernels.numba_available(), reason="numba installed: no fallback to test"
)
def test_numba_request_warns_and_falls_back() -> None:
    with pytest.warns(RuntimeWarning, match="falling back"):
        assert kernels.set_kernel_tier("numba") == "numpy"
    assert not kernels.use_numba()


def test_entry_points_decline_when_tier_inactive() -> None:
    kernels.set_kernel_tier("numpy")
    z = np.zeros(1)
    assert (
        kernels.lindley_segments(
            np.zeros(1, dtype=np.int64), np.ones(1, dtype=np.int64),
            z, z, np.full(1, -np.inf), z.copy(), z.copy(),
        )
        is False
    )
    assert (
        kernels.retry_schedule(
            np.zeros(1, dtype=np.int64), z, z, z, 1, None
        )
        is None
    )


# -- differential suite (requires numba) ------------------------------------


def _fault_plan(kind: str, seed: int):
    if kind == "no-faults":
        return None
    if kind == "outage":
        return canonical_outage_plan(SLOTS, N, seed)
    spec = FaultPlanSpec(
        num_slots=SLOTS, num_devices=N, straggler_prob=0.2, drop_prob=0.02
    )
    return generate_fault_plan(spec, seed=seed)


def _run(seed: int, kind: str):
    system = random_fleet(seed, N, max_arrivals=1.0)
    faults = _fault_plan(kind, seed)
    return EventSimulator(
        system,
        [PoissonArrivals(d.mean_arrivals) for d in system.devices],
        seed=seed,
        faults=faults,
        recovery=RecoveryPolicy.default() if faults is not None else None,
    ).run(
        FixedRatioPolicy(0.5), SLOTS, drain_limit_factor=100.0, engine="fast"
    )


@pytest.mark.skipif(
    not kernels.numba_available(),
    reason="numba not installed: compiled tier unavailable "
    "(the NumPy tier is the behaviour under test elsewhere)",
)
@pytest.mark.parametrize("kind", ["no-faults", "outage", "stragglers"])
def test_numba_tier_is_bitwise_identical(kind: str) -> None:
    failures = []
    for seed in range(34):
        kernels.set_kernel_tier("numpy")
        baseline = _run(seed, kind)
        assert kernels.set_kernel_tier("numba") == "numba"
        compiled = _run(seed, kind)
        if len(baseline.tasks) != len(compiled.tasks):
            failures.append((seed, "count"))
            continue
        for a, b in zip(baseline.tasks, compiled.tasks):
            if a != b:  # frozen dataclasses: bitwise field equality
                failures.append((seed, a.task_id))
                break
    assert not failures, f"{kind}: tiers diverged at {failures[:5]}"

"""Profile dataclasses: validation, cumulative FLOPs, exit heads."""

from __future__ import annotations

import pytest

from repro.models.profile import (
    DNNProfile,
    LayerProfile,
    exit_classifier_flops,
)


def _profile(flops=(10.0, 20.0, 30.0, 40.0)) -> DNNProfile:
    layers = tuple(
        LayerProfile(name=f"l{i}", flops=f, output_shape=(8, 4, 4))
        for i, f in enumerate(flops, start=1)
    )
    return DNNProfile(name="toy", input_bytes=100, layers=layers)


def test_layer_profile_validation():
    with pytest.raises(ValueError):
        LayerProfile("bad", -1.0, (8, 4, 4))
    with pytest.raises(ValueError):
        LayerProfile("bad", 1.0, (8, 0, 4))


def test_layer_output_bytes():
    layer = LayerProfile("l", 1.0, (8, 4, 4))
    assert layer.output_elements == 128
    assert layer.output_bytes == 512


def test_profile_needs_three_layers():
    layers = (
        LayerProfile("a", 1.0, (1, 1, 1)),
        LayerProfile("b", 1.0, (1, 1, 1)),
    )
    with pytest.raises(ValueError):
        DNNProfile("short", 10, layers)


def test_cumulative_flops():
    profile = _profile()
    assert profile.cumulative_flops == (0.0, 10.0, 30.0, 60.0, 100.0)
    assert profile.total_flops == 100.0


def test_layer_range_flops():
    profile = _profile()
    assert profile.layer_range_flops(0, 2) == 30.0
    assert profile.layer_range_flops(2, 4) == 70.0
    assert profile.layer_range_flops(1, 1) == 0.0


def test_layer_range_flops_validation():
    profile = _profile()
    with pytest.raises(ValueError):
        profile.layer_range_flops(3, 2)
    with pytest.raises(ValueError):
        profile.layer_range_flops(0, 5)


def test_exits_one_per_layer():
    profile = _profile()
    assert len(profile.exits) == profile.num_layers
    assert profile.exit(1).index == 1
    with pytest.raises(ValueError):
        profile.exit(0)
    with pytest.raises(ValueError):
        profile.layer(5)


def test_exit_classifier_flops_formula():
    flops = exit_classifier_flops((64, 8, 8), num_classes=10, hidden_units=128)
    expected = 64 * 8 * 8 + 2 * 64 * 128 + 2 * 128 * 10 + 5 * 10
    assert flops == expected


def test_exit_classifier_scales_with_channels():
    small = exit_classifier_flops((32, 8, 8))
    big = exit_classifier_flops((512, 8, 8))
    assert big > small


def test_intermediate_bytes_index_zero_is_input():
    profile = _profile()
    assert profile.intermediate_bytes(0) == 100
    assert profile.intermediate_bytes(2) == 512

"""Module backprop: gradient checks for Linear/ReLU/Sequential and the
multi-exit network's joint loss."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.functional import cross_entropy
from repro.nn.modules import Linear, ReLU, Sequential
from repro.nn.multi_exit_net import MultiExitMLP


def _numeric_grad(f, param, eps=1e-6):
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = param[idx]
        param[idx] = original + eps
        up = f()
        param[idx] = original - eps
        down = f()
        param[idx] = original
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


def test_linear_forward_shape():
    rng = np.random.default_rng(0)
    layer = Linear(4, 3, rng)
    out = layer.forward(np.ones((2, 4)))
    assert out.shape == (2, 3)


def test_linear_rejects_bad_dims():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        Linear(0, 3, rng)


def test_linear_backward_before_forward_raises():
    rng = np.random.default_rng(0)
    layer = Linear(4, 3, rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.ones((2, 3)))


def test_linear_gradient_check():
    rng = np.random.default_rng(1)
    layer = Linear(4, 3, rng)
    x = rng.normal(size=(5, 4))
    target = rng.normal(size=(5, 3))

    def loss():
        return 0.5 * float(((layer.forward(x, train=False) - target) ** 2).sum())

    layer.zero_grad()
    out = layer.forward(x)
    layer.backward(out - target)
    assert np.allclose(
        layer.grad_weight, _numeric_grad(loss, layer.weight), atol=1e-4
    )
    assert np.allclose(layer.grad_bias, _numeric_grad(loss, layer.bias), atol=1e-4)


def test_sequential_gradient_check():
    rng = np.random.default_rng(2)
    net = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 3, rng))
    x = rng.normal(size=(6, 4))
    target = rng.normal(size=(6, 3))

    def loss():
        return 0.5 * float(((net.forward(x, train=False) - target) ** 2).sum())

    net.zero_grad()
    out = net.forward(x)
    grad_in = net.backward(out - target)
    assert grad_in.shape == x.shape
    for param, grad in zip(net.params(), net.grads()):
        assert np.allclose(grad, _numeric_grad(loss, param), atol=1e-4)


def test_multi_exit_net_gradient_check():
    """Full joint-loss gradient check through chunked trunk + heads."""
    rng = np.random.default_rng(3)
    net = MultiExitMLP(input_dim=12, num_classes=3, num_stages=3, hidden=6, seed=0)
    x = rng.normal(size=(7, 12)).astype(np.float64)
    y = rng.integers(0, 3, size=7)

    def loss():
        logits = net.forward_all(x, train=False)
        return sum(
            w * cross_entropy(l, y) for w, l in zip(net.loss_weights, logits)
        )

    analytic_loss = net.train_batch(x, y)
    assert analytic_loss == pytest.approx(loss())
    for param, grad in zip(net.params(), net.grads()):
        numeric = _numeric_grad(loss, param)
        assert np.allclose(grad, numeric, atol=1e-4), "joint-loss grad mismatch"


def test_multi_exit_net_validation():
    with pytest.raises(ValueError):
        MultiExitMLP(input_dim=12, num_classes=3, num_stages=2)
    with pytest.raises(ValueError):
        MultiExitMLP(input_dim=12, num_classes=3, num_stages=3, loss_weights=[1.0])
    with pytest.raises(ValueError):
        MultiExitMLP(
            input_dim=12, num_classes=3, num_stages=3, loss_weights=[1, 1, -1]
        )


def test_multi_exit_net_forward_shapes():
    net = MultiExitMLP(input_dim=12, num_classes=5, num_stages=4, hidden=8)
    logits = net.forward_all(np.zeros((2, 12)))
    assert len(logits) == 4
    assert all(l.shape == (2, 5) for l in logits)
    with pytest.raises(ValueError):
        net.forward_all(np.zeros((2, 10)))


def test_multi_exit_net_with_hidden_heads():
    net = MultiExitMLP(
        input_dim=12, num_classes=5, num_stages=3, hidden=8, exit_hidden=4
    )
    logits = net.forward_all(np.zeros((2, 12)))
    assert len(logits) == 3

"""Property-based tests of the event simulator's invariants."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.offloading import (
    DeviceConfig,
    EdgeSystem,
    FixedRatioPolicy,
)
from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    NetworkProfile,
    RASPBERRY_PI_3B,
)
from repro.models.multi_exit import MultiExitDNN
from repro.models.exit_rates import ParametricExitCurve
from repro.models.zoo import build_model
from repro.sim.arrivals import PoissonArrivals
from repro.sim.events import EventSimulator
from repro.units import mbps


def _system(first, second, complexity, num_devices, bandwidth):
    me_dnn = MultiExitDNN(
        build_model("squeezenet-1.0"),
        ParametricExitCurve.from_complexity(complexity),
    )
    partition = me_dnn.partition_at(first, second)
    devices = tuple(
        DeviceConfig(
            name=f"d{i}",
            flops=RASPBERRY_PI_3B.flops,
            link=NetworkProfile(mbps(bandwidth), 0.02),
            mean_arrivals=0.5,
            overhead=RASPBERRY_PI_3B.per_task_overhead,
        )
        for i in range(num_devices)
    )
    return EdgeSystem(
        devices=devices,
        edge_flops=EDGE_I7_3770.flops,
        cloud_flops=CLOUD_V100.flops,
        edge_cloud=INTERNET_EDGE_CLOUD,
        partition=partition,
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    exits=st.sets(st.integers(min_value=1, max_value=8), min_size=2, max_size=2),
    complexity=st.floats(min_value=0.1, max_value=0.9),
    num_devices=st.integers(min_value=1, max_value=3),
    bandwidth=st.floats(min_value=5.0, max_value=50.0),
    ratio=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_event_sim_invariants_random_configs(
    exits, complexity, num_devices, bandwidth, ratio, seed
):
    """For any valid configuration:

    * every generated task completes after drain (conservation);
    * latency decompositions sum exactly;
    * exit tiers are valid and respect the partition's support;
    * per-device attribution covers every task.
    """
    first, second = sorted(exits)
    system = _system(first, second, complexity, num_devices, bandwidth)
    simulator = EventSimulator(
        system=system,
        arrivals=[PoissonArrivals(0.5)] * num_devices,
        seed=seed,
    )
    result = simulator.run(FixedRatioPolicy(ratio), 25)
    assert result.completion_rate == 1.0
    for task in result.tasks:
        assert 1 <= task.exit_tier <= 3
        assert task.tct > 0
        parts = task.compute_time + task.transfer_time + task.queue_time
        assert parts == pytest.approx(task.tct, rel=1e-6, abs=1e-9)
        assert 0 <= task.device < num_devices
    tier1, tier2, tier3 = result.exit_fractions()
    assert tier1 + tier2 + tier3 == pytest.approx(1.0)
    # Tier-3 tasks exist only if the partition lets tasks through (σ₂ < 1).
    if system.partition.sigma2 >= 1.0 - 1e-9:
        assert tier3 == 0.0

"""Unit-conversion helpers."""

from __future__ import annotations

import pytest

from repro import units


def test_mbps_roundtrip():
    assert units.to_mbps(units.mbps(10.0)) == pytest.approx(10.0)


def test_mbps_is_bytes_per_second():
    # 8 Mbps = 1 MB/s.
    assert units.mbps(8.0) == pytest.approx(1e6)


def test_kbps_scale():
    assert units.kbps(8000.0) == pytest.approx(units.mbps(8.0))


def test_ms_roundtrip():
    assert units.to_ms(units.ms(250.0)) == pytest.approx(250.0)


def test_gflops_roundtrip():
    assert units.to_gflops(units.gflops(3.6)) == pytest.approx(3.6)


def test_mflops_scale():
    assert units.mflops(1000.0) == pytest.approx(units.gflops(1.0))


def test_byte_helpers():
    assert units.kb(1.0) == 1000
    assert units.mb(1.0) == 1_000_000
    assert units.to_kb(2500.0) == pytest.approx(2.5)
    assert units.to_mb(2_500_000.0) == pytest.approx(2.5)


def test_tensor_bytes_float32():
    assert units.tensor_bytes(3, 32, 32) == 3 * 32 * 32 * 4


def test_tensor_bytes_custom_element_size():
    assert units.tensor_bytes(10, bytes_per_element=1) == 10


def test_tensor_bytes_rejects_nonpositive_dims():
    with pytest.raises(ValueError):
        units.tensor_bytes(3, 0, 32)

"""Shared fixtures for the test suite (factories live in ``helpers.py``)."""

from __future__ import annotations

import pytest

from repro.hardware import (
    CLOUD_V100,
    EDGE_I7_3770,
    INTERNET_EDGE_CLOUD,
    RASPBERRY_PI_3B,
    WIFI_DEVICE_EDGE,
)
from repro.core.exit_setting import AverageEnvironment
from repro.models.exit_rates import ParametricExitCurve
from repro.models.multi_exit import MultiExitDNN
from repro.models.zoo import build_model

from tests.helpers import make_device, make_system


@pytest.fixture(scope="session")
def inception_profile():
    return build_model("inception-v3")


@pytest.fixture(scope="session")
def vgg_profile():
    return build_model("vgg-16")


@pytest.fixture(scope="session")
def all_profiles():
    return {
        name: build_model(name)
        for name in ("vgg-16", "resnet-34", "inception-v3", "squeezenet-1.0")
    }


@pytest.fixture
def inception_me(inception_profile):
    return MultiExitDNN(inception_profile, ParametricExitCurve.from_complexity(0.5))


@pytest.fixture
def rpi_environment():
    return AverageEnvironment.from_platforms(
        RASPBERRY_PI_3B,
        EDGE_I7_3770,
        CLOUD_V100,
        WIFI_DEVICE_EDGE,
        INTERNET_EDGE_CLOUD,
        edge_share=0.25,
    )


@pytest.fixture
def small_system(inception_me, rpi_environment):
    """A 2-device RPi system with a mid-depth partition, for policy tests."""
    # make_device's defaults are exactly the WIFI_DEVICE_EDGE hop.
    devices = tuple(make_device(name=f"pi-{i}") for i in range(2))
    return make_system(
        partition=inception_me.partition_at(5, 14),
        devices=devices,
        edge_overhead=EDGE_I7_3770.per_task_overhead,
        cloud_overhead=CLOUD_V100.per_task_overhead,
    )

"""Legacy setup shim: the offline environment lacks the `wheel` package, so
PEP 660 editable installs fail; `pip install -e . --no-use-pep517` uses this."""
from setuptools import setup

setup()
